//! Mergeable log-bucketed latency histograms.
//!
//! Values (nanoseconds) are bucketed log-linearly: 16 linear sub-buckets per
//! power of two, so relative error is bounded at ~6% across the full `u64`
//! range while the whole table stays under 8 KiB of counters. Recording is a
//! single relaxed `fetch_add` (plus an exact-max `fetch_max`), cheap enough
//! to leave on in the engine's hot paths. [`LocalRecorder`] offers a
//! plain-integer per-thread variant for tight bench loops; it merges into a
//! shared [`Histogram`] (or folds into a [`HistSnapshot`]) afterwards.
// lint-allow-file(ordering-audit): every atomic here is a statistics cell (bucket counts, sums, maxima) merged and read by snapshot; Relaxed is the design, nothing synchronizes on these values.

use lobster_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Linear sub-buckets per power of two = `1 << SUB_BITS`.
pub const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering the whole `u64` range.
pub const BUCKETS: usize = SUB * (64 - SUB_BITS as usize + 1);

/// Bucket index for a value. Exact for values below 16; above that the
/// bucket spans `2^(g-1)` values where `g` is the power-of-two group.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let group = msb - SUB_BITS as usize + 1;
        let sub = ((v >> (msb - SUB_BITS as usize)) & (SUB as u64 - 1)) as usize;
        group * SUB + sub
    }
}

/// Smallest value mapping to bucket `i`.
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let group = i / SUB;
        let sub = (i % SUB) as u64;
        (SUB as u64 + sub) << (group - 1)
    }
}

/// Number of distinct values mapping to bucket `i`.
#[inline]
pub fn bucket_width(i: usize) -> u64 {
    if i < SUB {
        1
    } else {
        1u64 << (i / SUB - 1)
    }
}

/// Largest value mapping to bucket `i`.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    bucket_lower_bound(i).saturating_add(bucket_width(i) - 1)
}

/// Shared, thread-safe log-bucketed histogram.
pub struct Histogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value (nanoseconds by convention).
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record the time elapsed since `start`, if a timer was issued.
    #[inline]
    pub fn record_timer(&self, start: Option<Instant>) {
        if let Some(t) = start {
            self.record(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// Fold another histogram's buckets into this one. Bucket-lossless:
    /// every bucket count, the total count, and the sum add exactly; `max`
    /// takes the larger side. Used by [`crate::Counters::merge_from`] to
    /// build a global view over per-shard metrics.
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.counts.iter().zip(other.counts.iter()) {
            let c = src.load(Ordering::Relaxed);
            if c != 0 {
                dst.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Fold a per-thread recorder's buckets into this histogram.
    pub fn merge_recorder(&self, r: &LocalRecorder) {
        for (i, &c) in r.counts.iter().enumerate() {
            if c != 0 {
                self.counts[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(r.count, Ordering::Relaxed);
        self.sum.fetch_add(r.sum, Ordering::Relaxed);
        self.max.fetch_max(r.max, Ordering::Relaxed);
    }

    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Per-thread lock-free recorder: plain integers, no atomics. Merge into a
/// shared [`Histogram`] (or take a snapshot) when the thread finishes.
pub struct LocalRecorder {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LocalRecorder {
    fn default() -> Self {
        LocalRecorder {
            counts: vec![0u64; BUCKETS].into_boxed_slice().try_into().unwrap(),
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LocalRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        // Wrapping to match `AtomicU64::fetch_add` semantics in `Histogram`.
        self.sum = self.sum.wrapping_add(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self.counts.to_vec(),
            count: self.count,
            sum: self.sum,
            max: self.max,
        }
    }
}

/// Plain-value copy of a histogram; supports windowed deltas via `Sub`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl std::ops::Sub for HistSnapshot {
    type Output = HistSnapshot;
    /// Windowed delta. Bucket counts subtract exactly; `max` keeps the
    /// end-of-window value (an upper bound for the window).
    fn sub(self, rhs: HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            counts: self
                .counts
                .iter()
                .zip(rhs.counts.iter())
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(rhs.count),
            sum: self.sum.saturating_sub(rhs.sum),
            max: self.max,
        }
    }
}

impl HistSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate percentile (`p` in `0.0..=100.0`): the upper bound of the
    /// bucket holding the rank-`ceil(p% * count)` observation, clamped to the
    /// exact recorded max. Monotone in `p` by construction.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_ns: self.mean(),
            p50_ns: self.percentile(50.0),
            p95_ns: self.percentile(95.0),
            p99_ns: self.percentile(99.0),
            max_ns: self.max,
        }
    }
}

/// Compact percentile digest of one histogram, ready for report emission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    pub count: u64,
    pub mean_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

impl LatencySummary {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p95={} p99={} max={}",
            self.count,
            fmt_ns(self.mean_ns),
            fmt_ns(self.p50_ns),
            fmt_ns(self.p95_ns),
            fmt_ns(self.p99_ns),
            fmt_ns(self.max_ns),
        )
    }
}

/// Human-readable nanoseconds (`640ns`, `12.4µs`, `3.1ms`, `1.02s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

macro_rules! latencies {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Named latency histograms for the engine's hot paths. Lives inside
        /// [`crate::Counters`], so every holder of a [`crate::Metrics`]
        /// handle can record without extra plumbing.
        #[derive(Default)]
        pub struct Latencies {
            enabled: EnabledFlag,
            $($(#[$doc])* pub $name: Histogram,)+
        }

        /// Point-in-time copy of every [`Latencies`] histogram.
        #[derive(Clone, Debug, Default, PartialEq, Eq)]
        pub struct LatenciesSnapshot {
            $($(#[$doc])* pub $name: HistSnapshot,)+
        }

        impl Latencies {
            pub fn snapshot(&self) -> LatenciesSnapshot {
                LatenciesSnapshot {
                    $($name: self.$name.snapshot(),)+
                }
            }

            pub fn reset(&self) {
                $(self.$name.reset();)+
            }

            /// Fold every histogram of `other` into this one (see
            /// [`Histogram::merge_from`]).
            pub fn merge_from(&self, other: &Latencies) {
                $(self.$name.merge_from(&other.$name);)+
            }
        }

        impl std::ops::Sub for LatenciesSnapshot {
            type Output = LatenciesSnapshot;
            fn sub(self, rhs: LatenciesSnapshot) -> LatenciesSnapshot {
                LatenciesSnapshot {
                    $($name: self.$name - rhs.$name,)+
                }
            }
        }

        impl LatenciesSnapshot {
            /// Non-empty histograms as `(name, summary)` pairs.
            pub fn summaries(&self) -> Vec<(&'static str, LatencySummary)> {
                let mut out = Vec::new();
                $(
                    if !self.$name.is_empty() {
                        out.push((stringify!($name), self.$name.summary()));
                    }
                )+
                out
            }
        }
    };
}

latencies! {
    /// `Txn::put_blob` end-to-end (staging, not durability).
    put_blob,
    /// `Txn::get_blob` end-to-end.
    get_blob,
    /// `Txn::get_blob_range` end-to-end.
    get_blob_range,
    /// `Txn::commit` (submission under group commit; fsync when `commit_wait`).
    commit,
    /// Buffer-pool cold faults: one device round trip (serial or batched).
    pool_fault,
    /// WAL group-commit flush: staged-buffer write + device sync.
    wal_flush,
}

/// Recording starts enabled; benches may disable it to measure the floor.
struct EnabledFlag(AtomicBool);

impl Default for EnabledFlag {
    fn default() -> Self {
        EnabledFlag(AtomicBool::new(true))
    }
}

impl Latencies {
    /// Start a timer if recording is enabled. Pass the result to
    /// [`Histogram::record_timer`] on every exit path.
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.enabled.0.load(Ordering::Relaxed) {
            Some(Instant::now())
        } else {
            None
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.0.store(on, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        // Every bucket's lower bound is the previous bucket's upper bound + 1.
        let mut prev_upper: Option<u64> = None;
        for i in 0..BUCKETS {
            let lo = bucket_lower_bound(i);
            if let Some(pu) = prev_upper {
                assert_eq!(lo, pu + 1, "gap at bucket {i}");
            }
            let hi = bucket_upper_bound(i);
            assert!(hi >= lo);
            prev_upper = if hi == u64::MAX { None } else { Some(hi) };
            if prev_upper.is_none() {
                assert_eq!(i, BUCKETS - 1, "u64::MAX reached before last bucket");
            }
        }
    }

    #[test]
    fn value_lands_inside_its_bucket() {
        for &v in &[
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            100,
            1_000,
            65_535,
            65_536,
            1 << 30,
            (1 << 40) + 12345,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(bucket_lower_bound(i) <= v, "v={v} bucket={i}");
            assert!(v <= bucket_upper_bound(i), "v={v} bucket={i}");
        }
    }

    #[test]
    fn single_value_percentiles_are_exact() {
        let h = Histogram::new();
        h.record(12_345);
        let s = h.snapshot();
        assert_eq!(s.percentile(50.0), 12_345);
        assert_eq!(s.percentile(99.0), 12_345);
        assert_eq!(s.max(), 12_345);
        assert_eq!(s.mean(), 12_345);
    }

    #[test]
    fn percentiles_monotone() {
        let h = Histogram::new();
        for v in [10u64, 100, 1_000, 10_000, 100_000, 1_000_000] {
            for _ in 0..10 {
                h.record(v);
            }
        }
        let s = h.snapshot();
        let p50 = s.percentile(50.0);
        let p95 = s.percentile(95.0);
        let p99 = s.percentile(99.0);
        assert!(p50 <= p95 && p95 <= p99 && p99 <= s.max());
    }

    #[test]
    fn local_recorder_merge_matches_direct() {
        let h = Histogram::new();
        let mut r = LocalRecorder::new();
        let direct = Histogram::new();
        for v in [3u64, 17, 999, 4096, 70_000] {
            r.record(v);
            direct.record(v);
        }
        h.merge_recorder(&r);
        assert_eq!(h.snapshot(), direct.snapshot());
        assert_eq!(r.snapshot(), direct.snapshot());
    }

    #[test]
    fn snapshot_delta_is_window() {
        let h = Histogram::new();
        h.record(100);
        let a = h.snapshot();
        h.record(200);
        h.record(300);
        let d = h.snapshot() - a;
        assert_eq!(d.count(), 2);
        assert_eq!(d.mean(), 250);
    }

    #[test]
    fn disabled_timer_is_none() {
        let l = Latencies::default();
        assert!(l.timer().is_some());
        l.set_enabled(false);
        assert!(l.timer().is_none());
        l.put_blob.record_timer(l.timer()); // no-op
        assert!(l.snapshot().put_blob.is_empty());
    }
}
