//! End-to-end tests of the `lobster-lint` binary against the known-bad
//! fixture corpus. Each fixture seeds exactly the violations one rule
//! hunts; `allowed.rs` seeds all of them and silences each with the
//! escape hatch. Tests run with the crate root as cwd, so fixture paths
//! are relative and diagnostics are byte-stable.

use std::process::Command;

struct Run {
    code: i32,
    stdout: String,
    stderr: String,
}

fn lint(args: &[&str]) -> Run {
    let out = Command::new(env!("CARGO_BIN_EXE_lobster-lint"))
        .args(args)
        .output()
        .expect("spawn lobster-lint");
    Run {
        code: out.status.code().unwrap_or(-1),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

#[test]
fn bad_facade_fixture_fails() {
    let r = lint(&["--rule", "sync-facade", "tests/fixtures/bad_facade.rs"]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(r.stderr.contains("4 finding(s)"), "stderr: {}", r.stderr);
    assert!(r
        .stdout
        .contains("tests/fixtures/bad_facade.rs:5:5 [sync-facade] direct `std::sync` use"));
    assert!(r.stdout.contains(":6:5 [sync-facade]"));
    assert!(r.stdout.contains("direct `parking_lot` use"));
    assert!(r.stdout.contains("direct `loom` use"));
    // The tolerated segment (`std::sync::mpsc`) must stay silent.
    assert!(
        !r.stdout.contains(":8:"),
        "mpsc line flagged:\n{}",
        r.stdout
    );
}

#[test]
fn bad_ordering_fixture_fails() {
    let r = lint(&["--rule", "ordering-audit", "tests/fixtures/bad_ordering.rs"]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(r.stderr.contains("1 finding(s)"), "stderr: {}", r.stderr);
    assert!(r.stdout.contains(
        "tests/fixtures/bad_ordering.rs:7:30 [ordering-audit] non-SeqCst `Ordering::Relaxed` \
         without a `// ordering:` justification"
    ));
    // The annotated load must stay silent.
    assert!(
        !r.stdout.contains(":12:"),
        "annotated site flagged:\n{}",
        r.stdout
    );
}

#[test]
fn bad_guard_fixture_fails() {
    let r = lint(&["--rule", "guard-discipline", "tests/fixtures/bad_guard.rs"]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(r.stderr.contains("3 finding(s)"), "stderr: {}", r.stderr);
    assert!(r
        .stdout
        .contains("raw streaming lease (prevent_evict) call `lease_extent`"));
    assert!(r
        .stdout
        .contains("raw pin-gate / worker-slot budget call `acquire`"));
    assert!(r.stdout.contains("raw versioned latch call `fix_shared`"));
}

#[test]
fn bad_panic_fixture_fails() {
    let r = lint(&[
        "--rule",
        "no-panic-in-request-path",
        "tests/fixtures/bad_panic.rs",
    ]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(r.stderr.contains("3 finding(s)"), "stderr: {}", r.stderr);
    assert!(r
        .stdout
        .contains("slice/array indexing on the serving path"));
    assert!(r
        .stdout
        .contains("`panic!` on the request/choke-point path"));
    assert!(r
        .stdout
        .contains("`.unwrap()` on the request/choke-point path"));
}

#[test]
fn bad_lock_order_fixture_reports_full_cycle_chain() {
    let r = lint(&["--rule", "lock-order", "tests/fixtures/bad_lock_order.rs"]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(r.stderr.contains("1 finding(s)"), "stderr: {}", r.stderr);
    // The cycle itself…
    assert!(r
        .stdout
        .contains("[lock-order] lock-order cycle: lobster::a -> lobster::b -> lobster::a"));
    // …and both witnesses of the inversion, with their functions.
    assert!(r
        .stdout
        .contains("lobster::a -> lobster::b at tests/fixtures/bad_lock_order.rs:7 in fn forward"));
    assert!(r.stdout.contains(
        "lobster::b -> lobster::a at tests/fixtures/bad_lock_order.rs:14 in fn backward"
    ));
}

#[test]
fn escape_hatch_silences_every_rule() {
    let r = lint(&["tests/fixtures/allowed.rs"]);
    assert_eq!(r.code, 0, "stdout:\n{}\nstderr:\n{}", r.stdout, r.stderr);
    assert!(r.stderr.contains("clean"), "stderr: {}", r.stderr);
    assert!(r.stdout.is_empty(), "stdout: {}", r.stdout);
}

#[test]
fn json_output_snapshot() {
    let r = lint(&[
        "--rule",
        "ordering-audit",
        "--json",
        "tests/fixtures/bad_ordering.rs",
    ]);
    assert_eq!(r.code, 1);
    let expected = r#"[
  {"rule":"ordering-audit","file":"tests/fixtures/bad_ordering.rs","line":7,"col":30,"message":"non-SeqCst `Ordering::Relaxed` without a `// ordering:` justification","note":"state what this ordering may and may not observe, e.g. `// ordering: counter; nothing synchronizes on this value`"}
]
"#;
    assert_eq!(r.stdout, expected);
}

#[test]
fn json_empty_when_clean() {
    let r = lint(&["--json", "tests/fixtures/allowed.rs"]);
    assert_eq!(r.code, 0, "stdout:\n{}", r.stdout);
    assert_eq!(r.stdout.trim(), "[]");
}

#[test]
fn unknown_rule_is_usage_error() {
    let r = lint(&["--rule", "no-such-rule", "tests/fixtures/allowed.rs"]);
    assert_eq!(r.code, 2);
    assert!(r.stderr.contains("unknown rule"));
}

#[test]
fn no_files_and_no_workspace_is_usage_error() {
    let r = lint(&[]);
    assert_eq!(r.code, 2);
    assert!(r.stderr.contains("usage:"));
}

/// The acceptance gate CI runs: the tree itself must lint clean. Walks
/// up from the crate dir to the workspace root, exactly like `cargo
/// lint` does.
#[test]
fn workspace_lints_clean() {
    let r = lint(&["--workspace"]);
    assert_eq!(
        r.code, 0,
        "workspace not lint-clean:\n{}\n{}",
        r.stdout, r.stderr
    );
    assert!(r.stderr.contains("clean"), "stderr: {}", r.stderr);
}
