//! Differential testing of the filesystem implementations: the DBMS facade,
//! all four modeled file systems, and the real host filesystem must behave
//! identically through the shared `FileSystem` trait.

use lobster::baselines::{FsProfile, ModelFs};
use lobster::core::{Config, Database, RelationKind};
use lobster::storage::MemDevice;
use lobster::vfs::{read_to_vec, write_all, DbFs, FileKind, FileSystem, HostFs, WritableDbFs};
use lobster::workloads::make_payload;
use std::sync::Arc;

/// The file set every backend receives.
fn corpus() -> Vec<(String, Vec<u8>)> {
    (0..40)
        .map(|i| {
            (
                format!("/docs/file{i:03}.bin"),
                make_payload(100 + i * 3777, i as u64),
            )
        })
        .collect()
}

/// Write the corpus through a writable backend.
fn populate(fs: &dyn FileSystem, corpus: &[(String, Vec<u8>)]) {
    for (path, data) in corpus {
        write_all(fs, path, data).unwrap_or_else(|e| panic!("write {path}: {e}"));
    }
}

/// Exercise the read-side API surface and return an observation record.
fn observe(fs: &dyn FileSystem, corpus: &[(String, Vec<u8>)]) -> Vec<String> {
    let mut out = Vec::new();
    // Directory listing.
    let mut names = fs.readdir("/docs").unwrap();
    names.sort();
    out.push(format!("ls: {}", names.join(",")));
    // Stats and full reads.
    for (path, data) in corpus.iter().step_by(7) {
        let stat = fs.getattr(path).unwrap();
        assert_eq!(stat.kind, FileKind::File);
        out.push(format!("stat {path}: {}", stat.size));
        let got = read_to_vec(fs, path).unwrap();
        assert_eq!(&got, data, "{path} content");
        out.push(format!("read {path}: ok"));
    }
    // Random-offset partial reads.
    for (path, data) in corpus.iter().step_by(11) {
        let fd = fs.open(path).unwrap();
        let off = data.len() as u64 / 3;
        let mut buf = vec![0u8; (data.len() / 4).max(1)];
        let n = fs.read(fd, off, &mut buf).unwrap();
        assert_eq!(&buf[..n], &data[off as usize..off as usize + n]);
        // Past-EOF read returns 0 bytes.
        let n = fs.read(fd, data.len() as u64 + 100, &mut buf).unwrap();
        assert_eq!(n, 0, "{path}: read past EOF");
        fs.close(fd).unwrap();
        out.push(format!("pread {path}: ok"));
    }
    // Missing files.
    assert!(fs.open("/docs/definitely-missing").is_err());
    assert!(fs.getattr("/docs/definitely-missing").is_err());
    out.push("missing: ok".into());
    out
}

#[test]
fn all_filesystems_agree() {
    let corpus = corpus();
    let mut observations: Vec<(String, Vec<String>)> = Vec::new();

    // Host filesystem — real syscalls, ground truth.
    let root = std::env::temp_dir().join(format!("lobster-diff-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let host = HostFs::new(&root).unwrap();
    populate(&host, &corpus);
    observations.push(("host".into(), observe(&host, &corpus)));
    std::fs::remove_dir_all(&root).ok();

    // The four modeled file systems.
    for profile in [
        FsProfile::ext4_ordered(),
        FsProfile::ext4_journal(),
        FsProfile::xfs(),
        FsProfile::btrfs(),
        FsProfile::f2fs(),
    ] {
        let mut p = profile;
        p.syscall = std::time::Duration::ZERO; // keep the test fast
        p.page_op = std::time::Duration::ZERO;
        let fs = ModelFs::new(p, Arc::new(MemDevice::new(512 << 20)), 16 * 1024);
        populate(&fs, &corpus);
        observations.push((profile.name.to_string(), observe(&fs, &corpus)));
    }

    // The DBMS facade (read-only; populate through transactions).
    let db = Database::create(
        Arc::new(MemDevice::new(512 << 20)),
        Arc::new(MemDevice::new(64 << 20)),
        Config {
            pool_frames: 8192,
            ..Config::default()
        },
    )
    .unwrap();
    let docs = db.create_relation("docs", RelationKind::Blob).unwrap();
    let mut t = db.begin();
    for (path, data) in &corpus {
        let name = path.rsplit('/').next().unwrap();
        t.put_blob(&docs, name.as_bytes(), data).unwrap();
    }
    t.commit().unwrap();
    let dbfs = DbFs::new(db.clone());
    observations.push(("lobster".into(), observe(&dbfs, &corpus)));

    // The writable DBMS facade: populated through the same write API as
    // the host fs, in commit batches of 8.
    let db2 = Database::create(
        Arc::new(MemDevice::new(512 << 20)),
        Arc::new(MemDevice::new(64 << 20)),
        Config {
            pool_frames: 8192,
            ..Config::default()
        },
    )
    .unwrap();
    db2.create_relation("docs", RelationKind::Blob).unwrap();
    let wfs = WritableDbFs::with_batch(db2, 8);
    populate(&wfs, &corpus);
    wfs.finish().unwrap();
    observations.push(("lobster-rw".into(), observe(&wfs, &corpus)));

    // Every backend produced the same observation trace.
    let (ref_name, reference) = &observations[0];
    for (name, obs) in &observations[1..] {
        assert_eq!(obs, reference, "{name} diverges from {ref_name}");
    }
}

// ------------------------------------------------------ differential fuzz ---

use proptest::prelude::*;

#[derive(Debug, Clone)]
enum FsOp {
    Create { file: u8, size: u16 },
    Read { file: u8 },
    Stat { file: u8 },
    Unlink { file: u8 },
    List,
}

fn fs_op() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        3 => (any::<u8>(), 1u16..20_000).prop_map(|(f, s)| FsOp::Create { file: f % 10, size: s }),
        3 => any::<u8>().prop_map(|f| FsOp::Read { file: f % 10 }),
        2 => any::<u8>().prop_map(|f| FsOp::Stat { file: f % 10 }),
        2 => any::<u8>().prop_map(|f| FsOp::Unlink { file: f % 10 }),
        1 => Just(FsOp::List),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary op sequences: the writable DBMS facade and the real host
    /// filesystem must be observationally identical (existence, sizes,
    /// contents, listings), including after overwrites and deletes.
    #[test]
    fn writable_dbfs_matches_hostfs(ops in proptest::collection::vec(fs_op(), 1..60)) {
        let root = std::env::temp_dir().join(format!(
            "lobster-fsfuzz-{}-{:x}",
            std::process::id(),
            &ops as *const _ as usize
        ));
        std::fs::remove_dir_all(&root).ok();
        let host = HostFs::new(&root).unwrap();
        std::fs::create_dir_all(root.join("d")).unwrap(); // mirror the relation

        let db = Database::create(
            Arc::new(MemDevice::new(256 << 20)),
            Arc::new(MemDevice::new(64 << 20)),
            Config { pool_frames: 4096, ..Config::default() },
        ).unwrap();
        db.create_relation("d", RelationKind::Blob).unwrap();
        let wfs = WritableDbFs::with_batch(db, 4);

        let both: [&dyn FileSystem; 2] = [&host, &wfs];
        let mut seq = 0u64;
        for op in &ops {
            match op {
                FsOp::Create { file, size } => {
                    seq += 1;
                    let data = make_payload(*size as usize, seq);
                    let path = format!("/d/f{file}");
                    for fs in both {
                        // creat(2) semantics: overwrite allowed.
                        write_all(fs, &path, &data).unwrap();
                    }
                }
                FsOp::Read { file } => {
                    let path = format!("/d/f{file}");
                    let a = read_to_vec(&host, &path);
                    let b = read_to_vec(&wfs, &path);
                    match (a, b) {
                        (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "content of {}", path),
                        (Err(_), Err(_)) => {}
                        (a, b) => prop_assert!(false, "read {}: host={:?} db={:?}",
                            path, a.map(|v| v.len()), b.map(|v| v.len())),
                    }
                }
                FsOp::Stat { file } => {
                    let path = format!("/d/f{file}");
                    let a = host.getattr(&path).map(|s| s.size);
                    let b = wfs.getattr(&path).map(|s| s.size);
                    prop_assert_eq!(a.ok(), b.ok(), "stat {}", path);
                }
                FsOp::Unlink { file } => {
                    let path = format!("/d/f{file}");
                    let a = host.unlink(&path).is_ok();
                    let b = wfs.unlink(&path).is_ok();
                    prop_assert_eq!(a, b, "unlink {}", path);
                }
                FsOp::List => {
                    let mut a = host.readdir("/d").unwrap();
                    let mut b = wfs.readdir("/d").unwrap();
                    a.sort();
                    b.sort();
                    prop_assert_eq!(a, b, "listing");
                }
            }
        }
        std::fs::remove_dir_all(&root).ok();
    }
}
