//! Drives the four protocol-core models.
//!
//! Under `--cfg lobster_loom` each test is a bounded-exhaustive model check;
//! in a normal build each is a multi-iteration smoke run (see
//! `lobster_sync::model`). The `*_is_caught` tests run deliberately broken
//! protocol variants and require the checker to find the violation — they
//! only assert under loom, where detection is deterministic.

use lobster_sync_models::{claim, frontier, latch, pins, xshard};

#[test]
fn latch_mutual_exclusion() {
    latch::check_latch_excludes();
}

#[test]
fn optimistic_read_validates() {
    latch::check_optimistic_read_validates();
}

#[test]
fn fault_batch_claim_rollback() {
    claim::check_claim_rollback();
}

#[test]
fn commit_wal_before_extents() {
    frontier::check_wal_before_extents();
}

#[test]
fn pin_release_exactly_once() {
    pins::check_pin_release_exactly_once();
}

#[test]
fn xshard_epoch_covers_all_participants() {
    xshard::check_epoch_covers_all_participants();
}

#[test]
fn broken_latch_is_caught() {
    if !lobster_sync::is_loom() {
        return; // real-thread smoke runs cannot reliably hit the race
    }
    let r = std::panic::catch_unwind(latch::run_broken_latch);
    assert!(r.is_err(), "checker missed the torn read");
}

#[test]
fn broken_optimistic_read_is_caught() {
    if !lobster_sync::is_loom() {
        return;
    }
    let r = std::panic::catch_unwind(latch::run_broken_optimistic_read);
    assert!(r.is_err(), "checker missed the unvalidated optimistic read");
}

#[test]
fn broken_commit_ordering_is_caught() {
    if !lobster_sync::is_loom() {
        return;
    }
    let r = std::panic::catch_unwind(frontier::run_broken_ordering);
    assert!(r.is_err(), "checker missed the WAL-after-extents schedule");
}

#[test]
fn broken_xshard_single_shard_epoch_is_caught() {
    if !lobster_sync::is_loom() {
        return;
    }
    let r = std::panic::catch_unwind(xshard::run_broken_single_shard_epoch);
    assert!(
        r.is_err(),
        "checker missed the one-shard global-epoch advance"
    );
}

#[test]
fn broken_xshard_stale_epoch_is_caught() {
    if !lobster_sync::is_loom() {
        return;
    }
    let r = std::panic::catch_unwind(xshard::run_broken_stale_epoch);
    assert!(
        r.is_err(),
        "checker missed the stale-epoch durability decision"
    );
}
