//! The repo policy: which crates each rule binds, and where raw
//! primitives are legal. This is data, not code — the fixture tests
//! build their own [`LintConfig`] pointing at fixture files, and the
//! binary uses [`LintConfig::repo_default`].
//!
//! Shrinking an allowlist here is how coverage grows; growing one is a
//! reviewable event.

/// Per-file scope of the `no-panic-in-request-path` rule.
#[derive(Debug, Clone)]
pub struct PanicScope {
    /// Repo-relative path (exact file).
    pub path: String,
    /// Also deny slice/array indexing expressions (`buf[i]`, `&b[..n]`)
    /// in this file. Only the serving path opts in: the request path
    /// must degrade to an error frame, never a worker panic. The
    /// engine-internal choke points keep indexing (page-frame math is
    /// index-heavy and bounded by construction) but still ban the
    /// panic family.
    pub index: bool,
}

/// One guard-discipline rule: a set of raw paired-call method names
/// that are only legal inside `allowed_paths` (the RAII wrapper
/// modules that own the pairing).
#[derive(Debug, Clone)]
pub struct GuardRule {
    /// Human tag used in diagnostics, e.g. `"streaming lease"`.
    pub what: &'static str,
    /// Method names that constitute a raw acquire/release site.
    pub methods: Vec<&'static str>,
    /// If non-empty, the call only counts when the receiver's last
    /// path segment contains one of these substrings (used to keep
    /// generic names like `acquire`/`release` from firing on unrelated
    /// APIs).
    pub receiver_hints: Vec<&'static str>,
    /// Path prefixes (or exact files) where raw calls are legal.
    pub allowed_paths: Vec<String>,
}

/// Full lint policy.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crate directory names (under `crates/`) that must import
    /// concurrency primitives via `lobster-sync`.
    pub facade_crates: Vec<&'static str>,
    /// `std::sync::<seg>` path segments the facade rule tolerates even
    /// inside facade crates — primitives the facade deliberately does
    /// not wrap because loom modelling is meaningless for them.
    pub facade_allowed_segments: Vec<&'static str>,
    /// Path prefixes the ordering-audit rule skips.
    pub ordering_exclude: Vec<String>,
    /// Files in scope for `no-panic-in-request-path`.
    pub panic_scopes: Vec<PanicScope>,
    /// Guard-discipline rules.
    pub guard_rules: Vec<GuardRule>,
    /// Path prefixes the lock-order rule skips.
    pub lock_order_exclude: Vec<String>,
    /// How many leading lines a `lint-allow-file` pragma may appear in.
    pub head_allow_lines: u32,
}

impl LintConfig {
    /// The policy for this repository.
    pub fn repo_default() -> LintConfig {
        LintConfig {
            // The latch/commit/serving kernels — everything whose
            // interleavings the loom shim and the TSan matrix are
            // supposed to cover. storage/vfs/baselines stay off the
            // facade deliberately: devices and baseline stores are
            // exercised as opaque I/O from the kernels' point of view,
            // and the baselines exist to stay dead-simple reference
            // implementations.
            facade_crates: vec![
                "buffer",
                "core",
                "metrics",
                "serve",
                "workloads",
                "wal",
                "btree",
                "extent",
            ],
            facade_allowed_segments: vec![
                // mpsc channels are shimmed via crossbeam where they
                // matter; OnceLock/LazyLock are init-once cells with no
                // interesting interleavings under the SC-only shim.
                "mpsc",
                "OnceLock",
                "LazyLock",
                "Weak",
                "PoisonError",
            ],
            ordering_exclude: vec![
                // The facade itself re-exports `Ordering`; its audit
                // ledger is debug-only tooling.
                "crates/sync/".into(),
                // The model corpus runs under the SC-only loom
                // scheduler, where per-site orderings are irrelevant by
                // construction; the production twins of every modelled
                // site are annotated at their real home.
                "crates/sync-models/".into(),
            ],
            panic_scopes: vec![
                PanicScope {
                    path: "crates/serve/src/server.rs".into(),
                    index: true,
                },
                PanicScope {
                    path: "crates/serve/src/protocol.rs".into(),
                    index: true,
                },
                PanicScope {
                    path: "crates/wal/src/writer.rs".into(),
                    index: false,
                },
                PanicScope {
                    path: "crates/core/src/group_commit.rs".into(),
                    index: false,
                },
                PanicScope {
                    path: "crates/buffer/src/pool.rs".into(),
                    index: false,
                },
                PanicScope {
                    path: "crates/buffer/src/htpool.rs".into(),
                    index: false,
                },
            ],
            guard_rules: vec![
                GuardRule {
                    what: "streaming lease (prevent_evict)",
                    methods: vec!["lease_extent", "try_lease_resident", "unlease_extent"],
                    receiver_hints: vec![],
                    allowed_paths: vec![
                        // The pool implementations...
                        "crates/buffer/src/".into(),
                        // ...and the RAII wrappers: Txn::stream_blob_range's
                        // lease guard, which drops leases on every exit path...
                        "crates/core/src/txn.rs".into(),
                        // ...and the defragmenter's SourceGuard, which pins
                        // resident relocation sources the same way.
                        "crates/core/src/defrag.rs".into(),
                    ],
                },
                GuardRule {
                    what: "allocator quarantine fence",
                    methods: vec!["quarantine_extent", "release_quarantine"],
                    receiver_hints: vec![],
                    allowed_paths: vec![
                        // The allocator implements the fence ledger.
                        "crates/extent/src/".into(),
                        // The relocation FenceGuard (RAII: releases on drop
                        // unless disarmed into the commit pipeline).
                        "crates/core/src/defrag.rs".into(),
                        // The fence lifecycle's non-RAII endpoints: verify-
                        // on-read quarantine entry, rollback release, and
                        // the durability-frontier release+free in retire.
                        "crates/core/src/db.rs".into(),
                        "crates/core/src/txn.rs".into(),
                        "crates/core/src/group_commit.rs".into(),
                    ],
                },
                GuardRule {
                    what: "pin-gate / worker-slot budget",
                    methods: vec!["acquire", "release"],
                    receiver_hints: vec!["gate", "budget", "slots"],
                    allowed_paths: vec![
                        "crates/buffer/src/stream.rs".into(),
                        "crates/core/src/txn.rs".into(),
                        "crates/core/src/group_commit.rs".into(),
                        "crates/serve/src/server.rs".into(),
                        // The extracted pin-budget protocol core models
                        // the raw pairing on purpose.
                        "crates/sync-models/".into(),
                    ],
                },
                GuardRule {
                    what: "versioned latch",
                    methods: vec![
                        "fix_shared",
                        "fix_exclusive",
                        "release_shared",
                        "release_exclusive",
                    ],
                    receiver_hints: vec![],
                    allowed_paths: vec!["crates/buffer/src/".into()],
                },
            ],
            lock_order_exclude: vec!["crates/sync-models/".into(), "crates/sync/".into()],
            head_allow_lines: 30,
        }
    }

    /// A permissive config that binds every rule to the given file —
    /// what the fixture tests and the `--rule FILE` CLI mode use.
    pub fn for_explicit_file(path: &str) -> LintConfig {
        let mut cfg = LintConfig::repo_default();
        cfg.facade_crates = vec!["*"]; // facade rule applies to explicit files regardless
        cfg.ordering_exclude = vec![];
        cfg.lock_order_exclude = vec![];
        cfg.panic_scopes = vec![PanicScope {
            path: path.to_string(),
            index: true,
        }];
        for g in &mut cfg.guard_rules {
            g.allowed_paths = vec![];
        }
        cfg
    }
}

/// `crates/<name>/...` → `<name>`; the top-level `src/` facade crate
/// maps to `"lobster"`.
pub fn crate_of(rel_path: &str) -> &str {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("lobster")
    } else if let Some(rest) = rel_path.strip_prefix("shims/") {
        rest.split('/').next().unwrap_or("lobster")
    } else {
        "lobster"
    }
}
