//! Paged B+Tree for LOBSTER: slotted nodes, leaf prefix truncation, and
//! pluggable comparators (the Blob State index of §III-F plugs in a custom
//! [`KeyCmp`]).

#![forbid(unsafe_code)]

pub mod node;
mod tree;

pub use node::Node;
pub use tree::{BTree, KeyCmp, LexCmp, TreeStats};

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_buffer::{ExtentPool, PoolConfig};
    use lobster_extent::{ExtentAllocator, TierPolicy, TierTable};
    use lobster_storage::{Device, MemDevice};
    use lobster_sync::Arc;
    use lobster_types::{Error, Geometry, Pid};

    fn setup(frames: u64) -> (Arc<ExtentPool>, Arc<ExtentAllocator>) {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(64 << 20));
        let pool = ExtentPool::new(
            dev,
            Geometry::new(4096),
            PoolConfig {
                frames,
                alias: None,
                io_threads: 1,
                batched_faults: true,
                io_retries: 3,
            },
            lobster_metrics::new_metrics(),
        );
        let table = Arc::new(TierTable::new(TierPolicy::default()));
        let alloc = Arc::new(ExtentAllocator::new(table, Pid::new(0), 16 * 1024));
        (pool, alloc)
    }

    fn tree(frames: u64) -> BTree {
        let (pool, alloc) = setup(frames);
        BTree::create(pool, alloc, Arc::new(LexCmp), 1).unwrap()
    }

    #[test]
    fn insert_lookup_small() {
        let t = tree(256);
        assert!(t.insert(b"b", b"2", false).unwrap());
        assert!(t.insert(b"a", b"1", false).unwrap());
        assert!(t.insert(b"c", b"3", false).unwrap());
        assert_eq!(t.lookup(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.lookup(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(t.lookup(b"c").unwrap(), Some(b"3".to_vec()));
        assert_eq!(t.lookup(b"d").unwrap(), None);
    }

    #[test]
    fn duplicate_key_behaviour() {
        let t = tree(256);
        t.insert(b"k", b"v1", false).unwrap();
        assert!(matches!(
            t.insert(b"k", b"v2", false),
            Err(Error::KeyExists)
        ));
        assert!(!t.insert(b"k", b"v2", true).unwrap());
        assert_eq!(t.lookup(b"k").unwrap(), Some(b"v2".to_vec()));
    }

    #[test]
    fn oversized_entry_rejected() {
        let t = tree(256);
        let big = vec![0u8; 4096];
        assert!(matches!(
            t.insert(b"k", &big, false),
            Err(Error::InvalidArgument(_))
        ));
    }

    #[test]
    fn thousands_of_keys_with_splits() {
        let t = tree(4096);
        let n = 5000u32;
        // Pseudo-random insertion order.
        let mut keys: Vec<u32> = (0..n).collect();
        let mut state = 12345u64;
        for i in (1..keys.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            keys.swap(i, (state % (i as u64 + 1)) as usize);
        }
        for &k in &keys {
            let key = format!("key{k:08}");
            let val = format!("value-{k}");
            t.insert(key.as_bytes(), val.as_bytes(), false).unwrap();
        }
        let s = t.stats().unwrap();
        assert_eq!(s.entries, n as u64);
        assert!(s.height >= 2, "tree must have split, height={}", s.height);
        for k in (0..n).step_by(97) {
            let key = format!("key{k:08}");
            assert_eq!(
                t.lookup(key.as_bytes()).unwrap(),
                Some(format!("value-{k}").into_bytes()),
                "key {k}"
            );
        }
    }

    #[test]
    fn ordered_scan_visits_everything_in_order() {
        let t = tree(1024);
        for k in (0..1000u32).rev() {
            t.insert(format!("{k:06}").as_bytes(), &k.to_le_bytes(), false)
                .unwrap();
        }
        let mut seen = Vec::new();
        t.for_each(|k, _| {
            seen.push(k.to_vec());
            true
        })
        .unwrap();
        assert_eq!(seen.len(), 1000);
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted);
    }

    #[test]
    fn scan_from_midpoint_and_early_stop() {
        let t = tree(1024);
        for k in 0..100u32 {
            t.insert(format!("{k:04}").as_bytes(), b"x", false).unwrap();
        }
        let mut seen = Vec::new();
        t.scan_from(b"0050", |k, _| {
            seen.push(String::from_utf8(k.to_vec()).unwrap());
            seen.len() < 10
        })
        .unwrap();
        assert_eq!(seen.len(), 10);
        assert_eq!(seen[0], "0050");
        assert_eq!(seen[9], "0059");
    }

    #[test]
    fn remove_and_reinsert() {
        let t = tree(1024);
        for k in 0..500u32 {
            t.insert(format!("{k:05}").as_bytes(), &k.to_le_bytes(), false)
                .unwrap();
        }
        for k in (0..500u32).step_by(2) {
            let old = t.remove(format!("{k:05}").as_bytes()).unwrap();
            assert_eq!(old, Some(k.to_le_bytes().to_vec()), "key {k}");
        }
        assert_eq!(t.remove(b"00000").unwrap(), None, "already removed");
        for k in 0..500u32 {
            let expect = k % 2 == 1;
            assert_eq!(t.contains(format!("{k:05}").as_bytes()).unwrap(), expect);
        }
        // Reinsert the removed half.
        for k in (0..500u32).step_by(2) {
            t.insert(format!("{k:05}").as_bytes(), b"new", false)
                .unwrap();
        }
        assert_eq!(t.stats().unwrap().entries, 500);
    }

    #[test]
    fn prefix_compression_reduces_leaf_count() {
        // Keys share a long prefix; with truncation far more entries fit
        // per leaf than without (custom non-bytewise comparator disables
        // truncation, giving the baseline).
        struct NoPrefixLex;
        impl KeyCmp for NoPrefixLex {
            fn cmp_keys(&self, a: &[u8], b: &[u8]) -> std::cmp::Ordering {
                a.cmp(b)
            }
        }

        let make_keys = || {
            (0..2000u32).map(|k| {
                let mut key = vec![b'p'; 200]; // long shared prefix
                key.extend_from_slice(format!("{k:08}").as_bytes());
                key
            })
        };

        let (pool, alloc) = setup(4096);
        let compressed = BTree::create(pool, alloc, Arc::new(LexCmp), 1).unwrap();
        for key in make_keys() {
            compressed.insert(&key, b"v", false).unwrap();
        }

        let (pool, alloc) = setup(4096);
        let plain = BTree::create(pool, alloc, Arc::new(NoPrefixLex), 1).unwrap();
        for key in make_keys() {
            plain.insert(&key, b"v", false).unwrap();
        }

        let sc = compressed.stats().unwrap();
        let sp = plain.stats().unwrap();
        assert_eq!(sc.entries, sp.entries);
        assert!(
            sc.leaves * 2 < sp.leaves,
            "prefix truncation should at least halve leaves: {} vs {}",
            sc.leaves,
            sp.leaves
        );
    }

    #[test]
    fn custom_comparator_orders_by_it() {
        // Compare by the *numeric* value of an 8-byte LE key: byte order
        // and numeric order differ, proving the comparator is honored.
        struct NumCmp;
        impl KeyCmp for NumCmp {
            fn cmp_keys(&self, a: &[u8], b: &[u8]) -> std::cmp::Ordering {
                let x = u64::from_le_bytes(a.try_into().unwrap());
                let y = u64::from_le_bytes(b.try_into().unwrap());
                x.cmp(&y)
            }
        }
        let (pool, alloc) = setup(1024);
        let t = BTree::create(pool, alloc, Arc::new(NumCmp), 1).unwrap();
        for k in [300u64, 5, 1_000_000, 256, 77] {
            t.insert(&k.to_le_bytes(), &k.to_be_bytes(), false).unwrap();
        }
        let mut order = Vec::new();
        t.for_each(|k, _| {
            order.push(u64::from_le_bytes(k.try_into().unwrap()));
            true
        })
        .unwrap();
        assert_eq!(order, vec![5, 77, 256, 300, 1_000_000]);
        assert!(t.contains(&256u64.to_le_bytes()).unwrap());
    }

    #[test]
    fn multi_page_nodes() {
        let (pool, alloc) = setup(4096);
        let t = BTree::create(pool, alloc, Arc::new(LexCmp), 4).unwrap();
        assert!(t.max_entry() > 4000, "4-page nodes allow larger entries");
        let big_val = vec![7u8; 3000];
        for k in 0..200u32 {
            t.insert(format!("{k:06}").as_bytes(), &big_val, false)
                .unwrap();
        }
        assert_eq!(t.stats().unwrap().entries, 200);
        assert_eq!(t.lookup(b"000199").unwrap(), Some(big_val));
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let (pool, alloc) = setup(4096);
        let t = Arc::new(BTree::create(pool, alloc, Arc::new(LexCmp), 1).unwrap());
        // Preload.
        for k in 0..2000u32 {
            t.insert(format!("{k:06}").as_bytes(), &k.to_le_bytes(), false)
                .unwrap();
        }
        std::thread::scope(|s| {
            let tw = t.clone();
            s.spawn(move || {
                for k in 2000..3000u32 {
                    tw.insert(format!("{k:06}").as_bytes(), &k.to_le_bytes(), false)
                        .unwrap();
                }
            });
            for _ in 0..4 {
                let tr = t.clone();
                s.spawn(move || {
                    for k in (0..2000u32).step_by(7) {
                        assert!(tr.contains(format!("{k:06}").as_bytes()).unwrap());
                    }
                });
            }
        });
        assert_eq!(t.stats().unwrap().entries, 3000);
    }

    #[test]
    fn survives_eviction_pressure() {
        // Pool far smaller than the tree: nodes must round-trip through the
        // device.
        let (pool, alloc) = setup(32);
        let t = BTree::create(pool, alloc, Arc::new(LexCmp), 1).unwrap();
        for k in 0..3000u32 {
            t.insert(format!("{k:07}").as_bytes(), &k.to_le_bytes(), false)
                .unwrap();
        }
        for k in (0..3000u32).step_by(131) {
            assert_eq!(
                t.lookup(format!("{k:07}").as_bytes()).unwrap(),
                Some(k.to_le_bytes().to_vec())
            );
        }
    }

    #[test]
    fn collect_extents_covers_all_nodes() {
        let t = tree(1024);
        for k in 0..1000u32 {
            t.insert(format!("{k:05}").as_bytes(), b"v", false).unwrap();
        }
        let stats = t.stats().unwrap();
        let extents = t.collect_extents().unwrap();
        assert_eq!(extents.len() as u64, stats.nodes);
        assert!(extents.iter().any(|e| e.start == t.root()));
    }

    #[test]
    fn empty_tree_operations() {
        let t = tree(64);
        assert_eq!(t.lookup(b"any").unwrap(), None);
        assert_eq!(t.remove(b"any").unwrap(), None);
        let mut visited = 0;
        t.for_each(|_, _| {
            visited += 1;
            true
        })
        .unwrap();
        assert_eq!(visited, 0);
        let s = t.stats().unwrap();
        assert_eq!(s.leaves, 1);
        assert_eq!(s.height, 1);
    }
}
