//! Model-based testing of the out-of-place write policy (§VI): under
//! arbitrary block-aligned write/GC interleavings the device must stay
//! observationally identical to a plain in-place device.

use lobster_storage::{Device, MemDevice, OutOfPlaceDevice};
use proptest::prelude::*;
use std::collections::HashMap;

const BLOCK: usize = 4096;

#[derive(Debug, Clone)]
enum DevOp {
    /// Write `blocks` blocks at logical block `at`.
    Write { at: u8, blocks: u8 },
    /// Read back and check some block.
    Read { at: u8 },
    /// Force garbage collection.
    Gc,
}

fn dev_op() -> impl Strategy<Value = DevOp> {
    prop_oneof![
        5 => (any::<u8>(), 1u8..5).prop_map(|(at, blocks)| DevOp::Write { at: at % 64, blocks }),
        3 => any::<u8>().prop_map(|at| DevOp::Read { at: at % 70 }),
        1 => Just(DevOp::Gc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every read observes the latest write to that logical block — across
    /// frontier advances, segment recycling, and explicit GC — and GC
    /// physically relocates data without logical effect.
    #[test]
    fn out_of_place_is_observationally_in_place(
        ops in proptest::collection::vec(dev_op(), 1..120)
    ) {
        // Logical space 64+4 blocks; physical 8 segments of 512 blocks is
        // plenty, so the pressure comes from churn, not capacity.
        let dev = OutOfPlaceDevice::new(MemDevice::new(8 * 512 * BLOCK));
        let mut oracle: HashMap<u8, Vec<u8>> = HashMap::new();
        let mut seq = 0u64;

        for op in &ops {
            match op {
                DevOp::Write { at, blocks } => {
                    seq += 1;
                    for b in 0..*blocks {
                        let lb = at.wrapping_add(b) % 64;
                        let mut data = vec![0u8; BLOCK];
                        data[..8].copy_from_slice(&seq.to_le_bytes());
                        data[8] = lb;
                        dev.write_at(&data, (lb as u64) * BLOCK as u64).unwrap();
                        oracle.insert(lb, data);
                    }
                }
                DevOp::Read { at } => {
                    let mut buf = vec![0u8; BLOCK];
                    dev.read_at(&mut buf, (*at as u64) * BLOCK as u64).unwrap();
                    match oracle.get(at) {
                        Some(want) => prop_assert_eq!(&buf, want, "block {}", at),
                        None => prop_assert!(
                            buf.iter().all(|&b| b == 0),
                            "unwritten block {} must read zero", at
                        ),
                    }
                }
                DevOp::Gc => {
                    dev.gc(2).unwrap();
                }
            }
        }

        // Full final audit.
        for (lb, want) in &oracle {
            let mut buf = vec![0u8; BLOCK];
            dev.read_at(&mut buf, (*lb as u64) * BLOCK as u64).unwrap();
            prop_assert_eq!(&buf, want, "final audit block {}", lb);
        }
    }

    /// Heavy overwrite churn in a tight physical space: GC must keep the
    /// device writable forever (the write-cliff scenario of Figure 11, at
    /// device level).
    #[test]
    fn churn_never_wedges_the_frontier(seed in any::<u64>()) {
        // 4 segments physical, 1 segment's worth of logical blocks.
        let dev = OutOfPlaceDevice::new(MemDevice::new(4 * 512 * BLOCK));
        let mut rng = seed | 1;
        for i in 0..4000u64 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let lb = rng % 256;
            let mut data = vec![0u8; BLOCK];
            data[..8].copy_from_slice(&i.to_le_bytes());
            dev.write_at(&data, lb * BLOCK as u64).unwrap();
        }
        prop_assert!(dev.gc_stats().runs > 0, "churn at 4x overprovisioning must trigger GC");
        prop_assert!(dev.physical_utilization() <= 1.0);
    }
}
