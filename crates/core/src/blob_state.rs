//! The *Blob State* — the paper's single-layer indirection for BLOBs
//! (§III-B).
//!
//! A Blob State bundles everything needed to locate, validate, grow, and
//! index a BLOB: its size, SHA-256, the SHA-256 intermediate digest (for
//! resumable hashing on growth), a 32-byte content prefix (for cheap range
//! comparisons), an optional tail extent, and the head-page PIDs of its
//! extent sequence. Combined with the static extent-tier table, the PID
//! array fully determines the physical location of every byte.

use lobster_extent::{ExtentSpec, TierTable};
use lobster_sha256::Midstate;
use lobster_types::{read_u32, read_u64, Error, Pid, Result, MAX_EXTENTS_PER_BLOB};

/// Length of the embedded content prefix.
pub const PREFIX_LEN: usize = 32;

/// The Blob State (§III-B "Format").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlobState {
    /// Logical size of the BLOB in bytes.
    pub size: u64,
    /// SHA-256 of the full content (durability validation + point-query
    /// equality checks).
    pub sha256: [u8; 32],
    /// SHA-256 compression state at the last 64-byte boundary (resume point
    /// for growth operations).
    pub sha_midstate: [u8; 32],
    /// First `min(32, size)` bytes of the content, zero-padded.
    pub prefix: [u8; PREFIX_LEN],
    /// Tail extent (start page, page count), if the BLOB uses one.
    pub tail: Option<(Pid, u64)>,
    /// Head pages of the full tier extents, in sequence order.
    pub extents: Vec<Pid>,
}

impl BlobState {
    /// Build the physical extent list: tier extents (sizes from the static
    /// tier table) followed by the tail extent if present.
    pub fn extent_specs(&self, table: &TierTable) -> Vec<ExtentSpec> {
        let mut specs: Vec<ExtentSpec> = self
            .extents
            .iter()
            .enumerate()
            .map(|(i, &pid)| ExtentSpec::new(pid, table.size_of(i)))
            .collect();
        if let Some((pid, pages)) = self.tail {
            specs.push(ExtentSpec::new(pid, pages));
        }
        specs
    }

    /// Total pages of storage the BLOB occupies.
    pub fn capacity_pages(&self, table: &TierTable) -> u64 {
        table.cumulative_pages(self.extents.len()) + self.tail.map_or(0, |(_, p)| p)
    }

    /// The SHA midstate as a resumable hasher state (processed length is
    /// derived from `size`).
    pub fn midstate(&self) -> Midstate {
        Midstate::from_parts(&self.sha_midstate, self.size & !63)
    }

    /// Serialized length in bytes.
    pub fn encoded_len(&self) -> usize {
        8 + 32 + 32 + PREFIX_LEN + 8 + 4 + 1 + self.extents.len() * 8
    }

    /// Serialize (the representation stored in the relation B-Tree and in
    /// WAL records).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&self.size.to_le_bytes());
        out.extend_from_slice(&self.sha256);
        out.extend_from_slice(&self.sha_midstate);
        out.extend_from_slice(&self.prefix);
        let (tail_pid, tail_pages) = self
            .tail
            .map_or((u64::MAX, 0u32), |(p, n)| (p.raw(), n as u32));
        out.extend_from_slice(&tail_pid.to_le_bytes());
        out.extend_from_slice(&tail_pages.to_le_bytes());
        debug_assert!(self.extents.len() <= MAX_EXTENTS_PER_BLOB);
        out.push(self.extents.len() as u8);
        for pid in &self.extents {
            out.extend_from_slice(&pid.raw().to_le_bytes());
        }
        out
    }

    /// Deserialize a Blob State produced by [`BlobState::encode`].
    pub fn decode(buf: &[u8]) -> Result<BlobState> {
        const FIXED: usize = 8 + 32 + 32 + PREFIX_LEN + 8 + 4 + 1;
        if buf.len() < FIXED {
            return Err(Error::Corruption("blob state too short".into()));
        }
        let size = read_u64(buf);
        let mut sha256 = [0u8; 32];
        sha256.copy_from_slice(&buf[8..40]);
        let mut sha_midstate = [0u8; 32];
        sha_midstate.copy_from_slice(&buf[40..72]);
        let mut prefix = [0u8; PREFIX_LEN];
        prefix.copy_from_slice(&buf[72..72 + PREFIX_LEN]);
        let p = 72 + PREFIX_LEN;
        let tail_pid = read_u64(&buf[p..]);
        let tail_pages = read_u32(&buf[p + 8..]);
        let tail = if tail_pid == u64::MAX {
            None
        } else {
            Some((Pid::new(tail_pid), tail_pages as u64))
        };
        let n = buf[p + 12] as usize;
        if n > MAX_EXTENTS_PER_BLOB || buf.len() != FIXED + n * 8 {
            return Err(Error::Corruption(format!(
                "blob state length mismatch: n={n}, len={}",
                buf.len()
            )));
        }
        let extents = (0..n)
            .map(|i| Pid::new(read_u64(&buf[FIXED + i * 8..])))
            .collect();
        Ok(BlobState {
            size,
            sha256,
            sha_midstate,
            prefix,
            tail,
            extents,
        })
    }

    /// Build the content prefix field from the head of the data.
    pub fn make_prefix(data: &[u8]) -> [u8; PREFIX_LEN] {
        let mut p = [0u8; PREFIX_LEN];
        let n = data.len().min(PREFIX_LEN);
        p[..n].copy_from_slice(&data[..n]);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_extent::TierPolicy;

    fn sample() -> BlobState {
        BlobState {
            size: 123456,
            sha256: [7u8; 32],
            sha_midstate: [9u8; 32],
            prefix: BlobState::make_prefix(b"hello world"),
            tail: Some((Pid::new(99), 3)),
            extents: vec![Pid::new(4), Pid::new(10)],
        }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let enc = s.encode();
        assert_eq!(enc.len(), s.encoded_len());
        assert_eq!(BlobState::decode(&enc).unwrap(), s);
    }

    #[test]
    fn roundtrip_no_tail_no_extents() {
        let s = BlobState {
            size: 0,
            sha256: [0u8; 32],
            sha_midstate: [0u8; 32],
            prefix: [0u8; PREFIX_LEN],
            tail: None,
            extents: vec![],
        };
        assert_eq!(BlobState::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BlobState::decode(&[1, 2, 3]).is_err());
        let mut enc = sample().encode();
        enc.pop(); // truncate
        assert!(BlobState::decode(&enc).is_err());
    }

    #[test]
    fn extent_specs_follow_tier_table() {
        // Figure 1(b): extents P4 (1 page), P10 (2 pages), tail P15 (3 pages).
        let table = TierTable::new(TierPolicy::default());
        let s = BlobState {
            size: 6 * 4096,
            sha256: [0; 32],
            sha_midstate: [0; 32],
            prefix: [0; PREFIX_LEN],
            tail: Some((Pid::new(15), 3)),
            extents: vec![Pid::new(4), Pid::new(10)],
        };
        let specs = s.extent_specs(&table);
        assert_eq!(
            specs,
            vec![
                ExtentSpec::new(Pid::new(4), 1),
                ExtentSpec::new(Pid::new(10), 2),
                ExtentSpec::new(Pid::new(15), 3),
            ]
        );
        assert_eq!(s.capacity_pages(&table), 6);
    }

    #[test]
    fn prefix_handles_short_content() {
        let p = BlobState::make_prefix(b"ab");
        assert_eq!(&p[..2], b"ab");
        assert!(p[2..].iter().all(|&b| b == 0));
    }

    #[test]
    fn midstate_reconstruction() {
        let mut s = sample();
        s.size = 200; // boundary at 192
        let m = s.midstate();
        assert_eq!(m.processed, 192);
    }
}
