//! Table IV: the simulated git-clone benchmark — replaying a linux-like
//! file-creation trace through the common `FileSystem` interface.
//!
//! Paper shape: our DBMS finishes in roughly half the time of the file
//! systems (906 ms vs 1.4–2.3 s at full scale), because the trace is
//! dominated by `open`-for-creation, `fstat`, and `close` — all kernel
//! crossings for file systems, plain B-Tree operations for us. XFS is the
//! best file system; Ext4.journal is the worst.

use crate::*;
use lobster_baselines::{FsProfile, ModelFs};
use lobster_core::{Database, RelationKind};
use lobster_metrics::CostModel;
use lobster_vfs::{FileSystem, WritableDbFs};
use lobster_workloads::{GitCloneTrace, TraceOp};
use std::time::Instant;

/// Replay the trace through any FileSystem; returns elapsed seconds.
fn replay(fs: &dyn FileSystem, trace: &GitCloneTrace) -> f64 {
    let t0 = Instant::now();
    for op in &trace.ops {
        match op {
            TraceOp::Create { path, size } => {
                let fd = fs.create(path).expect("create");
                let data = make_payload(*size, path.len() as u64);
                let mut off = 0usize;
                // git writes in buffered chunks.
                for chunk in data.chunks(64 * 1024) {
                    fs.write(fd, off as u64, chunk).expect("write");
                    off += chunk.len();
                }
                fs.close(fd).expect("close");
            }
            TraceOp::Stat { path } => {
                std::hint::black_box(fs.getattr(path).expect("stat"));
            }
            TraceOp::Read { path } => {
                let stat = fs.getattr(path).expect("stat");
                let fd = fs.open(path).expect("open");
                let mut buf = vec![0u8; stat.size as usize];
                let mut off = 0usize;
                while off < buf.len() {
                    let n = fs.read(fd, off as u64, &mut buf[off..]).expect("read");
                    if n == 0 {
                        break;
                    }
                    off += n;
                }
                fs.close(fd).expect("close");
            }
        }
    }
    t0.elapsed().as_secs_f64()
}

pub(crate) fn run(report: &mut Report) {
    banner("Table IV — simulated git-clone trace", "§V-I Table IV");
    let files = scaled(8000);
    let trace = GitCloneTrace::synthesize(files, 7);
    let (creates, stats, reads) = trace.op_counts();
    println!(
        "trace: {creates} creates ({}), {stats} stats, {reads} reads",
        fmt_bytes(trace.total_bytes as f64)
    );
    let total_ops = (creates + stats + reads) as f64;

    let cm = CostModel::default();
    let mut table = Table::new(&["system", "time(ms)", "instructions", "kernel cycles"]);
    let our_secs;
    let mut fs_best = f64::INFINITY;

    // ---- Our engine ---------------------------------------------------------
    {
        let db = Database::create(mem_device(4 << 30), mem_device(1 << 30), our_config(1))
            .expect("create");
        // Relation per top-level directory (§III-E "relation as a
        // directory"); git's object/packfile writes batch ~32 files per
        // commit group.
        let mut tops: Vec<&str> = trace
            .ops
            .iter()
            .filter_map(|op| match op {
                TraceOp::Create { path, .. } => path.trim_start_matches('/').split('/').next(),
                _ => None,
            })
            .collect();
        tops.sort_unstable();
        tops.dedup();
        for top in tops {
            db.create_relation(top, RelationKind::Blob).expect("ddl");
        }
        let fs = WritableDbFs::with_batch(db.clone(), 32);
        let before = db.metrics().snapshot();
        let t0 = std::time::Instant::now();
        let _ = replay(&fs, &trace);
        fs.finish().expect("final batch");
        db.wait_for_durability().expect("async commits durable");
        let secs = t0.elapsed().as_secs_f64();
        our_secs = secs;
        let delta = db.metrics().snapshot() - before;
        let lat = db.metrics().latencies.snapshot();
        report.push(
            Entry::throughput("Our", total_ops / secs)
                .param("trace", "git_clone")
                .latency("engine.put_blob", lat.put_blob.summary())
                .counters(delta),
        );
        table.row(&[
            "Our".into(),
            format!("{:.0}", secs * 1000.0),
            format!("{}k", cm.instructions(&delta) / 1000),
            format!("{}k", cm.kernel_cycles(&delta) / 1000),
        ]);
    }

    // ---- File systems -------------------------------------------------------
    for profile in [
        FsProfile::ext4_ordered(),
        FsProfile::ext4_journal(),
        FsProfile::btrfs(),
        FsProfile::f2fs(),
        FsProfile::xfs(),
    ] {
        let fs = ModelFs::new(profile, mem_device(4 << 30), 256 * 1024);
        let before = fs.metrics().snapshot();
        let secs = replay(&fs, &trace);
        fs_best = fs_best.min(secs);
        let delta = fs.metrics().snapshot() - before;
        report.push(
            Entry::throughput(profile.name, total_ops / secs)
                .param("trace", "git_clone")
                .counters(delta),
        );
        table.row(&[
            profile.name.to_string(),
            format!("{:.0}", secs * 1000.0),
            format!("{}k", cm.instructions(&delta) / 1000),
            format!("{}k", cm.kernel_cycles(&delta) / 1000),
        ]);
    }

    table.print();
    report.push(Entry::new(
        "Our",
        "speedup_vs_best_fs",
        "x",
        fs_best / our_secs.max(1e-9),
        true,
    ));
    println!("\npaper: Our 906ms beats XFS 1464ms (best FS) and Ext4.journal 2330ms (worst)");
}
