//! Cross-shard crash fuzz: every shard gets its own `CrashDevice`, armed
//! at *staggered* crash points, so a power cut strands the shards at
//! different prefixes of their WAL streams. Recovery must still decide
//! every cross-shard transaction the same way on every shard.
//!
//! Invariants checked after every crash pattern:
//! 1. `ShardedDatabase::open` succeeds (recovery never wedges).
//! 2. Data committed before the coordinated checkpoint is always intact.
//! 3. Every cross-shard batch is **all-or-nothing**: either all of its
//!    keys are visible (the marker survived on every participant, or the
//!    watermark proves it once did) or none are — never a per-shard
//!    mixture.
//! 4. Recovery is crash-idempotent: a second crash immediately after
//!    recovery (before any new work) reopens to the same visible state,
//!    even though the first recovery truncated the markers it decided by
//!    — the pre-recovery watermark/list persistence closes that window.
//! 5. The reopened database accepts and persists new cross-shard commits.

use lobster_core::{Config, RelationKind, ShardDevices, ShardedDatabase};
use lobster_storage::{CrashDevice, Device, MemDevice};
use std::sync::Arc;

const SHARDS: usize = 4;
const DATA_CAP: usize = 64 << 20;
const WAL_CAP: usize = 16 << 20;
/// Keys per cross-shard batch; enough that every batch spans shards.
const BATCH: usize = 8;

fn cfg() -> Config {
    Config {
        pool_frames: 2048,
        ..Config::default()
    }
}

/// Sweep-width multiplier for the nightly torture CI job
/// (`LOBSTER_TORTURE_MULT=10`); unset or invalid means 1.
fn torture_mult() -> u64 {
    std::env::var("LOBSTER_TORTURE_MULT")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&m| m >= 1)
        .unwrap_or(1)
}

fn copy_device(src: &MemDevice, capacity: usize) -> Arc<MemDevice> {
    let dst = MemDevice::new(capacity);
    let mut buf = vec![0u8; 1 << 20];
    let mut off = 0u64;
    while off < src.capacity() {
        let n = buf.len().min((src.capacity() - off) as usize);
        src.read_at(&mut buf[..n], off).unwrap();
        dst.write_at(&buf[..n], off).unwrap();
        off += n as u64;
    }
    Arc::new(dst)
}

fn batch_key(batch: usize, j: usize) -> Vec<u8> {
    format!("g{batch:04}k{j:02}").into_bytes()
}

fn batch_value(batch: usize) -> Vec<u8> {
    format!("value-of-batch-{batch:04}").into_bytes()
}

/// Which keys of `batch` are visible; asserts their values are untorn.
fn visible_keys(sdb: &Arc<ShardedDatabase>, batch: usize) -> usize {
    let rel = sdb.relation("kv").expect("relation survives");
    let mut txn = sdb.begin();
    let mut present = 0;
    for j in 0..BATCH {
        if let Some(v) = txn.get_kv(&rel, &batch_key(batch, j)).unwrap() {
            assert_eq!(v, batch_value(batch), "batch {batch} key {j}: torn value");
            present += 1;
        }
    }
    txn.commit().unwrap();
    present
}

/// One crash pattern: shard `i`'s chosen device (WAL when `crash_wal`,
/// data otherwise) is armed after `crash_after + i * stagger` writes; the
/// other side stays reliable (its `CrashDevice` is never armed).
fn run_scenario(crash_after: u64, stagger: u64, crash_wal: bool, batches: usize) {
    struct Rig {
        data: Arc<CrashDevice<MemDevice>>,
        wal: Arc<CrashDevice<MemDevice>>,
    }
    let rigs: Vec<Rig> = (0..SHARDS)
        .map(|_| Rig {
            data: Arc::new(CrashDevice::new(MemDevice::new(DATA_CAP))),
            wal: Arc::new(CrashDevice::new(MemDevice::new(WAL_CAP))),
        })
        .collect();
    let parts: Vec<ShardDevices> = rigs
        .iter()
        .map(|r| ShardDevices {
            data: r.data.clone(),
            wal: r.wal.clone(),
        })
        .collect();

    let sdb = ShardedDatabase::create(parts, cfg()).unwrap();
    let rel = sdb.create_relation("kv", RelationKind::Kv).unwrap();

    // Phase 1: a stable cross-shard batch, checkpointed on every shard.
    {
        let mut txn = sdb.begin();
        for j in 0..BATCH {
            txn.put_kv(&rel, &batch_key(0, j), &batch_value(0)).unwrap();
        }
        txn.commit().unwrap();
    }
    sdb.checkpoint().unwrap();

    // Phase 2: arm the staggered crash points, then more batches. Commits
    // may "succeed" from the app's view — the device lies after the cut.
    for (i, r) in rigs.iter().enumerate() {
        let armed = if crash_wal { &r.wal } else { &r.data };
        armed.arm_after_writes(crash_after + i as u64 * stagger, 128);
    }
    let _ = (|| -> lobster_types::Result<()> {
        for batch in 1..=batches {
            let mut txn = sdb.begin();
            for j in 0..BATCH {
                txn.put_kv(&rel, &batch_key(batch, j), &batch_value(batch))?;
            }
            txn.commit()?;
        }
        Ok(())
    })();
    // Simulate the process dying: no shutdown, no rollback.
    std::mem::forget(sdb);

    // Phase 3: recover from what physically survived on every shard. Keep
    // the typed handles — set A is what the *first* recovery mutates.
    let set_a: Vec<(Arc<MemDevice>, Arc<MemDevice>)> = rigs
        .iter()
        .map(|r| {
            (
                copy_device(r.data.inner(), DATA_CAP),
                copy_device(r.wal.inner(), WAL_CAP),
            )
        })
        .collect();
    let parts_a: Vec<ShardDevices> = set_a
        .iter()
        .map(|(d, w)| ShardDevices {
            data: d.clone(),
            wal: w.clone(),
        })
        .collect();
    let (sdb2, _reports) = ShardedDatabase::open(parts_a, cfg())
        .unwrap_or_else(|e| panic!("crash_after={crash_after} stagger={stagger}: reopen: {e}"));

    // Invariant 2: the checkpointed batch is always fully intact.
    assert_eq!(
        visible_keys(&sdb2, 0),
        BATCH,
        "crash_after={crash_after} stagger={stagger}: stable batch damaged"
    );

    // Invariant 3: later batches are all-or-nothing across shards.
    let mut first_visibility = Vec::new();
    for batch in 1..=batches {
        let present = visible_keys(&sdb2, batch);
        assert!(
            present == 0 || present == BATCH,
            "crash_after={crash_after} stagger={stagger}: batch {batch} is a \
             per-shard mixture ({present}/{BATCH} keys visible)"
        );
        first_visibility.push(present);
    }
    drop(sdb2);

    // Invariant 4: crash again right after recovery — set A now holds
    // exactly what the first recovery persisted (markers truncated, the
    // watermark/list written pre-recovery). The decisions must replay.
    let parts_b: Vec<ShardDevices> = set_a
        .iter()
        .map(|(d, w)| ShardDevices {
            data: copy_device(d, DATA_CAP),
            wal: copy_device(w, WAL_CAP),
        })
        .collect();
    let (sdb3, _) = ShardedDatabase::open(parts_b, cfg()).unwrap_or_else(|e| {
        panic!("crash_after={crash_after} stagger={stagger}: second recovery: {e}")
    });
    assert_eq!(visible_keys(&sdb3, 0), BATCH);
    for (batch, &was) in (1..=batches).zip(first_visibility.iter()) {
        assert_eq!(
            visible_keys(&sdb3, batch),
            was,
            "crash_after={crash_after} stagger={stagger}: batch {batch} \
             decision flipped on the second recovery"
        );
    }

    // Invariant 5: still writable, cross-shard included.
    let post_batch = batches + 1;
    let rel3 = sdb3.relation("kv").expect("relation");
    {
        let mut txn = sdb3.begin();
        for j in 0..BATCH {
            txn.put_kv(&rel3, &batch_key(post_batch, j), &batch_value(post_batch))
                .unwrap();
        }
        txn.commit().unwrap();
    }
    sdb3.wait_for_durability().unwrap();
    assert_eq!(visible_keys(&sdb3, post_batch), BATCH);
    sdb3.shutdown().unwrap();
}

#[test]
fn staggered_wal_crash_sweep() {
    // Tight sweep over early WAL-write crash points with three stagger
    // widths: shards die 0, 2, or 5 device writes apart.
    for stagger in [0u64, 2, 5] {
        for crash_after in 0..6 * torture_mult() {
            run_scenario(crash_after, stagger, true, 5);
        }
    }
}

#[test]
fn staggered_data_crash_sweep() {
    // Data-device crashes: extent/page flushes are stranded at different
    // points per shard; the WAL (reliable here) must drive every shard to
    // the same decision.
    for stagger in [1u64, 3] {
        for crash_after in (0..12 * torture_mult()).step_by(2) {
            run_scenario(crash_after, stagger, false, 5);
        }
    }
}

#[test]
fn late_crash_completes_scenario() {
    // With a crash point beyond the scenario's writes nothing is lost:
    // every batch must be fully visible.
    run_scenario(100_000, 17, true, 3);
}
