//! The DBMS-backed filesystem: Listing 1 of the paper, in Rust.

use crate::{map_db_err, FileSystem};
use lobster_core::{Database, Relation, Txn};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errno-style error code (positive values, as FUSE returns them).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Errno(pub i32);

pub const ENOENT: Errno = Errno(2);
pub const EBADF: Errno = Errno(9);
pub const EINVAL: Errno = Errno(22);
pub const EISDIR: Errno = Errno(21);
pub const ENOTDIR: Errno = Errno(20);
pub const EROFS: Errno = Errno(30);

impl fmt::Debug for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self.0 {
            2 => "ENOENT",
            5 => "EIO",
            9 => "EBADF",
            20 => "ENOTDIR",
            21 => "EISDIR",
            22 => "EINVAL",
            30 => "EROFS",
            n => return write!(f, "Errno({n})"),
        };
        write!(f, "{name}")
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A file descriptor handed out by [`FileSystem::open`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fd(pub u64);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    File,
    Directory,
}

/// Result of `getattr` (the `fstat` analogue).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileStat {
    pub kind: FileKind,
    pub size: u64,
}

struct OpenFile {
    txn: Txn,
    relation: Arc<Relation>,
    key: Vec<u8>,
}

/// The DBMS-backed filesystem: relations are directories, BLOB keys are
/// read-only files.
pub struct DbFs {
    db: Arc<Database>,
    open_files: Mutex<HashMap<u64, OpenFile>>,
    next_fd: AtomicU64,
    /// Worker id used for the per-open transactions (selects the aliasing
    /// area).
    worker: usize,
}

impl DbFs {
    pub fn new(db: Arc<Database>) -> Self {
        Self::with_worker(db, 0)
    }

    pub fn with_worker(db: Arc<Database>, worker: usize) -> Self {
        DbFs {
            db,
            open_files: Mutex::new(HashMap::new()),
            next_fd: AtomicU64::new(3), // 0-2 reserved, as tradition demands
            worker,
        }
    }

    /// Split "/relation/filename" into its components (Listing 1's
    /// `ExtractRelationAndFileName`).
    fn split_path(path: &str) -> Result<(&str, Option<&str>), Errno> {
        let trimmed = path.trim_matches('/');
        if trimmed.is_empty() {
            return Ok(("", None));
        }
        match trimmed.split_once('/') {
            None => Ok((trimmed, None)),
            Some((rel, file)) if !file.contains('/') && !file.is_empty() => Ok((rel, Some(file))),
            _ => Err(ENOENT), // no nested directories
        }
    }

    fn relation(&self, name: &str) -> Result<Arc<Relation>, Errno> {
        self.db.relation(name).ok_or(ENOENT)
    }
}

impl FileSystem for DbFs {
    /// `open` starts a transaction so every later `read` on this fd sees a
    /// consistent BLOB (Listing 1, lines 1–4).
    fn open(&self, path: &str) -> Result<Fd, Errno> {
        let (rel_name, file) = Self::split_path(path)?;
        let file = file.ok_or(EISDIR)?;
        let relation = self.relation(rel_name)?;
        let mut txn = self.db.begin_with_worker(self.worker);
        // Existence check up front, like open(2).
        let state = map_db_err(txn.blob_state(&relation, file.as_bytes()))?;
        if state.is_none() {
            return Err(ENOENT);
        }
        // ordering: Relaxed; fetch_add only needs uniqueness, the fd table lock orders the rest
        let fd = Fd(self.next_fd.fetch_add(1, Ordering::Relaxed));
        self.open_files.lock().insert(
            fd.0,
            OpenFile {
                txn,
                relation,
                key: file.as_bytes().to_vec(),
            },
        );
        Ok(fd)
    }

    /// `pread` (Listing 1, lines 10–22): look up the Blob State, read the
    /// BLOB, copy the requested range into the caller's buffer.
    fn read(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> Result<usize, Errno> {
        let mut files = self.open_files.lock();
        let of = files.get_mut(&fd.0).ok_or(EBADF)?;
        let rel = of.relation.clone();
        let key = of.key.clone();
        map_db_err(of.txn.get_blob_range(&rel, &key, offset, buf))
    }

    /// `close` → FUSE `flush`: commit the per-open transaction (Listing 1,
    /// lines 5–8).
    fn close(&self, fd: Fd) -> Result<(), Errno> {
        let of = self.open_files.lock().remove(&fd.0).ok_or(EBADF)?;
        map_db_err(of.txn.commit())
    }

    /// `getattr`: a point query for the Blob State satisfies `stat`.
    fn getattr(&self, path: &str) -> Result<FileStat, Errno> {
        let (rel_name, file) = Self::split_path(path)?;
        if rel_name.is_empty() {
            return Ok(FileStat {
                kind: FileKind::Directory,
                size: 0,
            });
        }
        let relation = self.relation(rel_name)?;
        match file {
            None => Ok(FileStat {
                kind: FileKind::Directory,
                size: 0,
            }),
            Some(file) => {
                let mut txn = self.db.begin_with_worker(self.worker);
                let state =
                    map_db_err(txn.blob_state(&relation, file.as_bytes()))?.ok_or(ENOENT)?;
                map_db_err(txn.commit())?;
                Ok(FileStat {
                    kind: FileKind::File,
                    size: state.size,
                })
            }
        }
    }

    /// `readdir`: `/` lists relations; `/relation` scans its keys.
    fn readdir(&self, path: &str) -> Result<Vec<String>, Errno> {
        let (rel_name, file) = Self::split_path(path)?;
        if file.is_some() {
            return Err(ENOTDIR);
        }
        if rel_name.is_empty() {
            return Ok(self.db.relation_names());
        }
        let relation = self.relation(rel_name)?;
        let mut names = Vec::new();
        let mut txn = self.db.begin_with_worker(self.worker);
        map_db_err(txn.scan_states(&relation, &[], |k, _| {
            names.push(String::from_utf8_lossy(k).into_owned());
            true
        }))?;
        map_db_err(txn.commit())?;
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read_to_vec;
    use lobster_core::{Config, RelationKind};
    use lobster_storage::MemDevice;

    fn setup() -> (Arc<Database>, DbFs) {
        let dev = Arc::new(MemDevice::new(64 << 20));
        let wal = Arc::new(MemDevice::new(16 << 20));
        let db = Database::create(dev, wal, Config::default()).unwrap();
        let images = db.create_relation("image", RelationKind::Blob).unwrap();
        let docs = db.create_relation("document", RelationKind::Blob).unwrap();
        let mut t = db.begin();
        t.put_blob(&images, b"cat.png", b"MEOW-PNG-DATA").unwrap();
        t.put_blob(&images, b"dog.png", &vec![7u8; 50_000]).unwrap();
        t.put_blob(&docs, b"paper.pdf", b"PDF!").unwrap();
        t.commit().unwrap();
        let fs = DbFs::new(db.clone());
        (db, fs)
    }

    #[test]
    fn open_read_close_like_an_external_program() {
        let (_db, fs) = setup();
        let data = read_to_vec(&fs, "/image/cat.png").unwrap();
        assert_eq!(data, b"MEOW-PNG-DATA");
        let data = read_to_vec(&fs, "/image/dog.png").unwrap();
        assert_eq!(data, vec![7u8; 50_000]);
    }

    #[test]
    fn pread_at_offsets() {
        let (_db, fs) = setup();
        let fd = fs.open("/image/cat.png").unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(fs.read(fd, 5, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"PNG-");
        // Reading past EOF returns 0 bytes.
        assert_eq!(fs.read(fd, 100, &mut buf).unwrap(), 0);
        fs.close(fd).unwrap();
    }

    #[test]
    fn getattr_and_readdir() {
        let (_db, fs) = setup();
        let stat = fs.getattr("/image/dog.png").unwrap();
        assert_eq!(stat.kind, FileKind::File);
        assert_eq!(stat.size, 50_000);
        assert_eq!(fs.getattr("/image").unwrap().kind, FileKind::Directory);
        assert_eq!(fs.getattr("/").unwrap().kind, FileKind::Directory);

        let mut roots = fs.readdir("/").unwrap();
        roots.sort();
        assert_eq!(roots, vec!["document", "image"]);
        assert_eq!(fs.readdir("/image").unwrap(), vec!["cat.png", "dog.png"]);
    }

    #[test]
    fn errno_semantics() {
        let (_db, fs) = setup();
        assert_eq!(fs.open("/image/missing.png").unwrap_err(), ENOENT);
        assert_eq!(fs.open("/nope/f.png").unwrap_err(), ENOENT);
        assert_eq!(fs.open("/image").unwrap_err(), EISDIR);
        assert_eq!(fs.getattr("/image/missing.png").unwrap_err(), ENOENT);
        assert_eq!(fs.readdir("/image/cat.png").unwrap_err(), ENOTDIR);
        assert_eq!(fs.read(Fd(999), 0, &mut [0u8; 1]).unwrap_err(), EBADF);
        assert_eq!(fs.close(Fd(999)).unwrap_err(), EBADF);
        // Read-only: writes are refused.
        let fd = fs.open("/image/cat.png").unwrap();
        assert_eq!(fs.write(fd, 0, b"x").unwrap_err(), EROFS);
        assert_eq!(fs.create("/image/new.png").unwrap_err(), EROFS);
        assert_eq!(fs.unlink("/image/cat.png").unwrap_err(), EROFS);
        fs.close(fd).unwrap();
    }

    #[test]
    fn reads_within_one_open_are_consistent() {
        let (db, fs) = setup();
        let fd = fs.open("/image/cat.png").unwrap();
        // The open transaction holds a shared lock; a concurrent (younger)
        // writer must fail rather than mutate underneath the reader.
        let images = db.relation("image").unwrap();
        let mut w = db.begin();
        assert!(w.delete_blob(&images, b"cat.png").is_err());
        drop(w);
        let mut buf = [0u8; 13];
        assert_eq!(fs.read(fd, 0, &mut buf).unwrap(), 13);
        assert_eq!(&buf, b"MEOW-PNG-DATA");
        fs.close(fd).unwrap();
    }
}
