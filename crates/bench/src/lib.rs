//! Shared harness machinery for the paper-reproduction benchmarks.
//!
//! Every `benches/*.rs` target regenerates one table or figure of the
//! paper's evaluation (§V); see DESIGN.md's per-experiment index and
//! EXPERIMENTS.md for paper-vs-measured results. Scale factors are chosen
//! so the full suite runs in minutes on a laptop; set
//! `LOBSTER_BENCH_SCALE` (default `1.0`) to grow or shrink workloads.

#![forbid(unsafe_code)]

use lobster_baselines::{
    ClientServerCost, FsProfile, LobsterMode, LobsterStore, ModelFs, ObjectStore, OverflowStore,
    SqliteStore, ToastStore,
};
use lobster_buffer::AliasConfig;
use lobster_core::{BlobLogging, Config, PoolVariant};
use lobster_metrics::{LatencySummary, LocalRecorder, Snapshot};
use lobster_storage::{Device, MemDevice, ThrottleProfile, ThrottledDevice};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod env;
pub mod json;
pub mod report;
pub mod suite;

pub use env::{env, BenchEnv};
pub use report::{Entry, Report};

pub use lobster_workloads::{make_payload, PayloadDist, WikiCorpus, YcsbConfig, YcsbGenerator};

/// Workload scale multiplier from `LOBSTER_BENCH_SCALE` (via [`BenchEnv`]).
pub fn scale() -> f64 {
    env().scale
}

/// `n` scaled, with a floor of 1.
pub fn scaled(n: usize) -> usize {
    env().scaled(n)
}

/// Route all subsequently built devices through the NVMe throttle model
/// (used by the I/O-bound experiments so every system pays realistic
/// device costs; in-memory experiments leave this off).
pub fn use_throttled_devices(on: bool) {
    env().set_throttled(on);
}

/// Default device: sparse in-memory, optionally behind the NVMe model.
/// `sync` is free, matching the paper's fsync-disabled competitor setup.
pub fn mem_device(bytes: usize) -> Arc<dyn Device> {
    let raw = MemDevice::new(bytes);
    if env().throttled() {
        // Calibrated to the paper's testbed *ratio*, not absolute speed:
        // on the i7-13700K + 980 Pro, SHA-NI throughput (~2 GB/s) and
        // sustained SSD write bandwidth are roughly 1:1. Our SHA-NI path
        // measures ~1.2 GB/s, so the device model keeps the same ratio
        // (see EXPERIMENTS.md "Calibration").
        let mut profile = ThrottleProfile::nvme();
        profile.write_bw = 1_200_000_000;
        profile.read_bw = 2_000_000_000;
        profile.sync_latency = Duration::ZERO; // "fsync disabled"
        Arc::new(ThrottledDevice::new(raw, profile))
    } else {
        Arc::new(raw)
    }
}

/// Engine configuration used by the benchmarks (scaled-down §V-A setup).
pub fn our_config(workers: usize) -> Config {
    Config {
        pool_frames: 128 * 1024, // 512 MiB buffer pool
        pool_variant: PoolVariant::Vm {
            alias: Some(AliasConfig {
                workers: workers.max(1),
                worker_local_bytes: 16 << 20,
                shared_bytes: 256 << 20,
            }),
        },
        workers: workers.max(1),
        checkpoint_threshold: 256 << 20,
        // One in-flight request per extent of a large BLOB: the commit
        // flush is a single asynchronous batch (§III-C), so its latencies
        // must overlap like an io_uring submission would.
        io_threads: 16,
        // The paper's setup: group commit keeps I/O off the critical path
        // (fsync is disabled for every competitor, so commits are compared
        // at equal durability).
        commit_wait: false,
        ..Config::default()
    }
}

/// The competitor line-up for the YCSB experiments. Each builder is
/// invoked lazily so only one store's data is alive at a time.
pub struct SystemSpec {
    pub name: &'static str,
    pub build: Box<dyn Fn() -> Box<dyn ObjectStore>>,
}

/// Device size used by the standard line-up.
const DEV_BYTES: usize = 3 << 30; // sparse: actual memory = data written
const CACHE_PAGES: usize = 96 * 1024; // 384 MiB model page caches

fn lobster_variant(
    name: &'static str,
    mutate: impl Fn(&mut Config) + 'static,
    mode: LobsterMode,
) -> SystemSpec {
    SystemSpec {
        name,
        build: Box::new(move |/* lazily built */| {
            let mut cfg = our_config(1);
            mutate(&mut cfg);
            Box::new(
                LobsterStore::new(
                    name,
                    mem_device(DEV_BYTES),
                    mem_device(512 << 20),
                    cfg,
                    mode,
                )
                .expect("create lobster store"),
            )
        }),
    }
}

/// `Our` with the default (vmcache + aliasing + async BLOB logging) setup.
pub fn sys_our(mode: LobsterMode) -> SystemSpec {
    lobster_variant("Our", |_| {}, mode)
}

/// `Our.ht`: hash-table buffer pool.
pub fn sys_our_ht(mode: LobsterMode) -> SystemSpec {
    lobster_variant("Our.ht", |cfg| cfg.pool_variant = PoolVariant::Ht, mode)
}

/// `Our.verify`: SHA-256 verify-on-read enabled — prices the integrity
/// check of the fault-tolerance ladder (every `get_blob` re-hashes the
/// mapped view against the Blob State).
pub fn sys_our_verify(mode: LobsterMode) -> SystemSpec {
    lobster_variant("Our.verify", |cfg| cfg.verify_reads = true, mode)
}

/// `Our.physlog`: full content in the WAL.
pub fn sys_our_physlog(mode: LobsterMode) -> SystemSpec {
    lobster_variant(
        "Our.physlog",
        |cfg| cfg.blob_logging = BlobLogging::Physical { segment: 1 << 20 },
        mode,
    )
}

/// The four filesystem models.
pub fn sys_fs(profile: fn() -> FsProfile) -> SystemSpec {
    let name = profile().name;
    SystemSpec {
        name,
        build: Box::new(move || {
            Box::new(ModelFs::new(profile(), mem_device(DEV_BYTES), CACHE_PAGES))
        }),
    }
}

/// PostgreSQL (TOAST + unix socket).
pub fn sys_postgres() -> SystemSpec {
    SystemSpec {
        name: "PostgreSQL",
        build: Box::new(|| {
            Box::new(ToastStore::new(
                mem_device(DEV_BYTES),
                CACHE_PAGES / 2, // 16 GB shared buffers vs 32 GB pools in the paper
                ClientServerCost::unix_socket(),
            ))
        }),
    }
}

/// MySQL/InnoDB (overflow chains + unix socket).
pub fn sys_mysql() -> SystemSpec {
    SystemSpec {
        name: "MySQL",
        build: Box::new(|| {
            Box::new(OverflowStore::new(
                mem_device(DEV_BYTES),
                CACHE_PAGES,
                ClientServerCost::unix_socket(),
            ))
        }),
    }
}

/// SQLite (in-process, WAL mode).
pub fn sys_sqlite() -> SystemSpec {
    SystemSpec {
        name: "SQLite",
        build: Box::new(|| Box::new(SqliteStore::new(mem_device(DEV_BYTES), CACHE_PAGES, false))),
    }
}

// ---------------------------------------------------------------- runner ---

/// Outcome of one measured run: throughput plus the per-op latency digest
/// and the counter delta the run charged.
#[derive(Clone, Debug)]
pub struct RunResult {
    pub system: String,
    pub ops: u64,
    pub elapsed: Duration,
    pub stats: lobster_baselines::StoreStats,
    pub note: String,
    /// Harness-measured per-operation latency percentiles.
    pub latency: LatencySummary,
    /// Counter delta over the measured window (stats minus a pre-run
    /// snapshot, when the caller took one; otherwise the run totals).
    pub counters: Snapshot,
}

impl RunResult {
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Outcome of one YCSB phase: op count, wall time, per-op latency histogram.
pub struct YcsbRun {
    pub ops: u64,
    pub elapsed: Duration,
    pub latency: lobster_metrics::HistSnapshot,
}

impl YcsbRun {
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    pub fn summary(&self) -> LatencySummary {
        self.latency.summary()
    }
}

/// Run a YCSB phase against one store: `ops` operations drawn from `gen`,
/// each individually timed into a per-thread recorder.
pub fn run_ycsb(
    store: &dyn ObjectStore,
    gen: &mut YcsbGenerator,
    ops: usize,
) -> Result<YcsbRun, lobster_types::Error> {
    use lobster_workloads::Op;
    // One pre-generated scratch payload, sliced per update: payload
    // *generation* must not pollute the measured system costs.
    let mut scratch: Vec<u8> = Vec::new();
    let mut rec = LocalRecorder::new();
    let t0 = Instant::now();
    let mut done = 0u64;
    for _ in 0..ops {
        let op = gen.next_op();
        let t = Instant::now();
        match op {
            Op::Read { key } => {
                let mut sink = 0usize;
                store.get(&key_name(key), &mut |b| sink = b.len())?;
                std::hint::black_box(sink);
            }
            Op::Update { key, size } => {
                if scratch.len() < size {
                    scratch = make_payload(size, 0xF00D);
                }
                store.replace(&key_name(key), &scratch[..size])?;
            }
        }
        rec.record(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        done += 1;
    }
    // Background group commits belong to the measured window.
    store.quiesce();
    Ok(YcsbRun {
        ops: done,
        elapsed: t0.elapsed(),
        latency: rec.snapshot(),
    })
}

/// Load the initial YCSB dataset.
pub fn load_ycsb(
    store: &dyn ObjectStore,
    gen: &mut YcsbGenerator,
) -> Result<(), lobster_types::Error> {
    let mut scratch: Vec<u8> = Vec::new();
    for (key, size) in gen.load_phase() {
        if scratch.len() < size {
            scratch = make_payload(size, 0x10AD);
        }
        store.put(&key_name(key), &scratch[..size])?;
    }
    Ok(())
}

pub fn key_name(key: u64) -> String {
    format!("user{key:012}")
}

// ----------------------------------------------------------------- output ---

/// Fixed-width table printer for paper-style result tables.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.headers);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Human formatting helpers.
pub fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1}k", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

pub fn fmt_bytes(bytes: f64) -> String {
    if bytes >= (1 << 30) as f64 {
        format!("{:.2}GiB", bytes / (1u64 << 30) as f64)
    } else if bytes >= (1 << 20) as f64 {
        format!("{:.1}MiB", bytes / (1 << 20) as f64)
    } else if bytes >= 1024.0 {
        format!("{:.1}KiB", bytes / 1024.0)
    } else {
        format!("{bytes:.0}B")
    }
}

pub fn banner(title: &str, paper_ref: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("reproduces: {paper_ref}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_floors_at_one() {
        assert!(scaled(1) >= 1);
    }

    #[test]
    fn table_prints() {
        let mut t = Table::new(&["sys", "txn/s"]);
        t.row(&["Our".into(), "123k".into()]);
        t.print();
    }

    #[test]
    fn format_helpers() {
        assert_eq!(fmt_rate(1500.0), "1.5k");
        assert_eq!(fmt_rate(2_500_000.0), "2.50M");
        assert_eq!(fmt_bytes(2048.0), "2.0KiB");
    }

    #[test]
    fn ycsb_runner_smoke() {
        let spec = sys_our(LobsterMode::Blobs);
        let store = (spec.build)();
        let mut gen = YcsbGenerator::new(YcsbConfig {
            records: 10,
            read_ratio: 0.5,
            payload: PayloadDist::Fixed(10_000),
            zipf_theta: 0.9,
            seed: 1,
        });
        load_ycsb(store.as_ref(), &mut gen).unwrap();
        let run = run_ycsb(store.as_ref(), &mut gen, 50).unwrap();
        assert_eq!(run.ops, 50);
        // Every op was individually timed.
        assert_eq!(run.latency.count(), 50);
        let s = run.summary();
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns && s.p99_ns <= s.max_ns);
    }
}
