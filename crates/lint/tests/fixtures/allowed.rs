//! Fixture for the escape hatch: one violation per rule, every one
//! silenced by a `lint-allow` pragma with a reason. Must lint clean.
// lint-allow-file(sync-facade): fixture exercises the file-head pragma

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub fn calm(c: &AtomicU64, buf: &[u8], gate: &PinGate) -> u8 {
    // lint-allow(ordering-audit): fixture; the justification convention
    // is exercised by bad_ordering.rs
    c.load(Ordering::Relaxed);
    // lint-allow(guard-discipline): fixture; pairing is two lines down
    gate.acquire(1);
    gate.release(1); // lint-allow(guard-discipline): fixture; the matching release
    // lint-allow(no-panic-in-request-path): fixture; caller bounds-checks
    buf[0]
}

pub fn fwd(a: &M, b: &M) {
    let ga = a.lock(); // lint-allow(lock-order): fixture; inversion is deliberate
    let gb = b.lock();
    drop(gb);
    drop(ga);
}

pub fn bwd(a: &M, b: &M) {
    let gb = b.lock(); // lint-allow(lock-order): fixture; inversion is deliberate
    let ga = a.lock();
    drop(ga);
    drop(gb);
}
