//! Known-bad fixture for **sync-facade**: a facade-bound file reaching
//! for `std::sync`, `parking_lot` and `loom` directly. Never compiled —
//! only lexed by `lobster-lint`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
// Tolerated segment: the facade deliberately does not wrap mpsc.
use std::sync::mpsc::channel;

pub fn locks() {
    let m = parking_lot::Mutex::new(0u32);
    let _ = loom::sync::Arc::new(m);
}
