//! `lobster-bench` — run any subset of the paper's benches and emit
//! machine-readable `BENCH_<name>.json` reports, or diff two reports as a
//! regression gate.
//!
//! ```text
//! lobster-bench list
//! lobster-bench run fig9 fig5 --out-dir bench-out
//! lobster-bench run fig9 --json out.json
//! lobster-bench compare baseline.json candidate.json --threshold 0.35
//! ```
//!
//! Exit codes: 0 success, 1 regression detected by `compare`, 2 usage or
//! I/O error.

use lobster_bench::{report, suite};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  lobster-bench list\n  lobster-bench run <bench>... [--out-dir DIR] [--json FILE] [--best-of N]\n  lobster-bench compare <baseline.json> <candidate.json> [--threshold FRAC]\n\nbenches accept short names (fig9) or target names (fig9_cold_read); `all` runs everything.\n--best-of N repeats each bench and keeps the best value per entry (de-noising for CI).\nenvironment: LOBSTER_BENCH_SCALE (workload scale), LOBSTER_BENCH_JSON_DIR (default JSON dir)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("{:<24} {:<24} title", "name", "target");
            for s in suite::all() {
                println!(
                    "{:<24} {:<24} {} [{}]",
                    s.name, s.target, s.title, s.paper_ref
                );
            }
            ExitCode::SUCCESS
        }
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        _ => usage(),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut names: Vec<String> = Vec::new();
    let mut out_dir: Option<PathBuf> = None;
    let mut json_file: Option<PathBuf> = None;
    let mut best_of = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out-dir" => match it.next() {
                Some(d) => out_dir = Some(PathBuf::from(d)),
                None => return usage(),
            },
            "--json" => match it.next() {
                Some(f) => json_file = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--best-of" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => best_of = n,
                _ => return usage(),
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag '{flag}'");
                return usage();
            }
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        return usage();
    }
    if names.iter().any(|n| n == "all") {
        names = suite::all().iter().map(|s| s.name.to_string()).collect();
    }
    let mut specs = Vec::new();
    for n in &names {
        match suite::find(n) {
            Some(s) => specs.push(s),
            None => {
                eprintln!("unknown bench '{n}' (see `lobster-bench list`)");
                return ExitCode::from(2);
            }
        }
    }
    if json_file.is_some() && specs.len() != 1 {
        eprintln!("--json FILE takes exactly one bench; use --out-dir for several");
        return ExitCode::from(2);
    }

    for spec in specs {
        let report = suite::run_spec_best_of(spec, best_of);
        let path = match (&json_file, &out_dir) {
            (Some(f), _) => Some(f.clone()),
            (None, Some(d)) => Some(d.join(report.file_name())),
            (None, None) => lobster_bench::env()
                .json_dir
                .as_ref()
                .map(|d| d.join(report.file_name())),
        };
        if let Some(path) = path {
            if let Err(e) = report.write_to(&path) {
                eprintln!("error: writing {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("\nwrote {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut threshold = 0.35f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => match it.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => threshold = t,
                _ => return usage(),
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag '{flag}'");
                return usage();
            }
            f => files.push(PathBuf::from(f)),
        }
    }
    let [baseline, candidate] = files.as_slice() else {
        return usage();
    };
    let read = |p: &PathBuf| -> Result<String, ExitCode> {
        std::fs::read_to_string(p).map_err(|e| {
            eprintln!("error: reading {}: {e}", p.display());
            ExitCode::from(2)
        })
    };
    let base = match read(baseline) {
        Ok(t) => t,
        Err(c) => return c,
    };
    let cand = match read(candidate) {
        Ok(t) => t,
        Err(c) => return c,
    };
    match report::compare(&base, &cand, threshold) {
        Ok(r) => {
            println!(
                "compare {} -> {} (threshold {:.0}%)",
                baseline.display(),
                candidate.display(),
                threshold * 100.0
            );
            for line in &r.lines {
                println!("{line}");
            }
            println!(
                "\n{} compared, {} regressions, {} improvements, {} unmatched",
                r.compared, r.regressions, r.improvements, r.unmatched
            );
            if r.regressions > 0 {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
