//! # LOBSTER core engine
//!
//! The primary contribution of *"Why Files If You Have a DBMS?"* (ICDE
//! 2024), rebuilt as a Rust library:
//!
//! * **Blob State** ([`BlobState`]) — a single-layer indirection bundling
//!   size, SHA-256, SHA midstate, 32-byte content prefix, tail extent, and
//!   the extent-sequence head pages (§III-B).
//! * **Single-flush BLOB logging** — the WAL carries Blob States only; BLOB
//!   content is written to storage exactly once, at commit, after the WAL
//!   fsync (§III-C). Recovery validates committed BLOBs with their SHA-256.
//! * **Extent sequences** with the static tier table, tail extents, and
//!   commit-time extent recycling (§III-A/D).
//! * **Transactions** with record-level 2PL (wait-die) on Blob State rows
//!   (§III-H) and logical redo/undo recovery.
//! * **BLOB indexing** via the incremental Blob State comparator and
//!   semantic (expression) indexes (§III-F).
//!
//! ```
//! use lobster_core::{Config, Database, RelationKind};
//! use lobster_storage::MemDevice;
//! use std::sync::Arc;
//!
//! let dev = Arc::new(MemDevice::new(64 << 20));
//! let wal = Arc::new(MemDevice::new(16 << 20));
//! let db = Database::create(dev, wal, Config::default()).unwrap();
//! let images = db.create_relation("image", RelationKind::Blob).unwrap();
//!
//! let mut txn = db.begin();
//! txn.put_blob(&images, b"cat.png", &vec![7u8; 100_000]).unwrap();
//! txn.commit().unwrap();
//!
//! let mut txn = db.begin();
//! let len = txn.get_blob(&images, b"cat.png", |data| data.len()).unwrap();
//! assert_eq!(len, 100_000);
//! txn.commit().unwrap();
//! ```

#![forbid(unsafe_code)]

mod blob_state;
mod catalog;
mod db;
mod dedup;
mod defrag;
mod group_commit;
mod index;
mod lock;
mod recovery;
mod shard;
mod txn;

pub use blob_state::{BlobState, PREFIX_LEN};
pub use catalog::{Relation, RelationKind};
pub use db::{
    BlobLogging, ComparatorFactory, Config, CrossCommitPolicy, Database, PoolVariant, ScrubReport,
    UpdatePolicy,
};
pub use dedup::{DedupStats, DedupStore};
pub use defrag::{
    defrag_pass, scrub_pass, DefragConfig, DefragPassReport, Defragmenter, ScrubCursor,
};
pub use index::{BlobIndex, BlobStateCmp, ExpressionIndex, Udf};
pub use lock::{LockManager, LockMode};
pub use recovery::RecoveryReport;
pub use shard::{ShardDevices, ShardedDatabase, ShardedRelation, ShardedTxn, MAX_SHARDS};
pub use txn::Txn;

// Re-exports that appear in the public API surface.
pub use lobster_buffer::AliasConfig;
pub use lobster_extent::TierPolicy;
