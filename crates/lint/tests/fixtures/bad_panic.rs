//! Known-bad fixture for **no-panic-in-request-path**: indexing,
//! `panic!` and `.unwrap()` on what the config declares a request path.

pub fn handle(buf: &[u8]) -> u8 {
    let first = buf[0];
    if first == 0 {
        panic!("zero opcode");
    }
    buf.get(1).copied().unwrap()
}
