//! Tests for the two-stage (pipelined) group committer: per-group
//! WAL-fsync-before-extent-write ordering, sticky error surfacing, pin
//! budget release on flush completion, and the serial ablation mode.

use lobster_core::{Config, Database, PoolVariant, RelationKind};
use lobster_storage::{CrashDevice, Device, MemDevice};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        })
        .collect()
}

fn pipelined_cfg() -> Config {
    Config {
        pool_frames: 4096, // 16 MiB
        commit_wait: false,
        commit_inflight_flushes: 2,
        // Keep checkpoints out of the picture: they flush dirty extents
        // outside the committer and would pollute the device write logs.
        checkpoint_threshold: u64::MAX,
        ..Config::default()
    }
}

/// Spin (test-only) until `cond` holds or the timeout elapses.
fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

// ------------------------------------------------- WAL-before-extents ---

/// §III-C per group: if a batch's WAL fsync never succeeds, none of its
/// extent writes may reach the data device — even with pipelining — and the
/// failure sticks: later commits and drains keep erroring.
#[test]
fn wal_failure_blocks_extent_writes_and_sticks() {
    let data = Arc::new(CrashDevice::new(MemDevice::new(256 << 20)));
    let wal = Arc::new(CrashDevice::new(MemDevice::new(64 << 20)));
    let db = Database::create(data.clone(), wal.clone(), pipelined_cfg()).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();

    // Healthy phase: several async commits, fully flushed.
    for i in 0..4u64 {
        let mut t = db.begin();
        t.put_blob(&rel, &i.to_be_bytes(), &pattern(300_000, i))
            .unwrap();
        t.commit().unwrap();
    }
    db.wait_for_durability().unwrap();
    let m = db.metrics().snapshot();
    assert!(m.commit_flush_batches >= 1, "commits must have flushed");
    assert_eq!(m.commit_errors, 0);
    let healthy_writes = data.write_log().len();
    assert!(healthy_writes > 0, "healthy commits write extents");

    // Kill the WAL device: every append/fsync from here on fails.
    wal.crash_now();
    wal.set_fail_after_crash(true);

    // The next async commit is accepted (no sticky error yet)...
    let mut t = db.begin();
    t.put_blob(&rel, b"lost", &pattern(300_000, 99)).unwrap();
    t.commit().unwrap();

    // ...but its group's fsync fails, so the flush stage must never see it:
    // no extent write for the batch reaches the data device.
    assert!(
        db.wait_for_durability().is_err(),
        "lost commits must surface as Err"
    );
    assert_eq!(
        data.write_log().len(),
        healthy_writes,
        "extent writes issued for a batch whose WAL fsync failed"
    );

    // The failure is sticky: later commits fail fast instead of being
    // acknowledged on top of a lost one.
    let mut t = db.begin();
    t.put_blob(&rel, b"after", &pattern(10_000, 7)).unwrap();
    assert!(t.commit().is_err(), "commit after committer failure");
    assert!(db.wait_for_durability().is_err());
    assert!(db.metrics().snapshot().commit_errors >= 1);
    drop(db);
}

// ------------------------------------------------------- pin budget ---

/// A device whose writes block while the gate is shut. Reads, syncs, and
/// the initial setup writes pass through untouched.
struct GateDevice {
    inner: MemDevice,
    open: Mutex<bool>,
    cv: Condvar,
}

impl GateDevice {
    fn new(cap: usize) -> Self {
        GateDevice {
            inner: MemDevice::new(cap),
            open: Mutex::new(true),
            cv: Condvar::new(),
        }
    }

    fn close(&self) {
        *self.open.lock().unwrap() = false;
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

impl Device for GateDevice {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> lobster_types::Result<()> {
        self.inner.read_at(buf, offset)
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> lobster_types::Result<()> {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
        drop(open);
        self.inner.write_at(buf, offset)
    }

    fn sync(&self) -> lobster_types::Result<()> {
        self.inner.sync()
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }
}

/// The pin budget must be released when a batch's *flush* completes, not
/// when its fsync returns: with two groups fsynced but their extent writes
/// stuck on the device, a third oversized commit has to block in `submit`.
#[test]
fn pin_budget_releases_on_flush_completion_not_fsync() {
    let data = Arc::new(GateDevice::new(256 << 20));
    let wal = Arc::new(MemDevice::new(64 << 20));
    let mut cfg = pipelined_cfg();
    cfg.pool_frames = 1024; // 4 MiB pool -> 1 MiB pin budget
    let db = Database::create(data.clone(), wal, cfg).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    data.close();

    let payload = pattern(400 * 1024, 1);
    let flushes = |db: &Database| db.metrics().snapshot().commit_flush_batches;

    // First commit: wait for its group's flush to be submitted so the
    // second commit lands in a group of its own.
    let mut t = db.begin();
    t.put_blob(&rel, b"a", &payload).unwrap();
    t.commit().unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || flushes(&db) == 1),
        "first group's flush never submitted"
    );

    // Second commit: both groups now have their WAL records fsynced and
    // their extent flushes stuck behind the gate.
    let mut t = db.begin();
    t.put_blob(&rel, b"b", &payload).unwrap();
    t.commit().unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || flushes(&db) == 2),
        "second group's flush never submitted"
    );

    // Third commit: 3 x 400 KiB > 1 MiB budget, so `submit` must block
    // until an in-flight flush lands — fsync completion alone is not
    // enough to admit it.
    let done = Arc::new(AtomicBool::new(false));
    let committer = {
        let db = db.clone();
        let rel = rel.clone();
        let payload = payload.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let mut t = db.begin();
            t.put_blob(&rel, b"c", &payload).unwrap();
            t.commit().unwrap();
            done.store(true, Ordering::Release);
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        !done.load(Ordering::Acquire),
        "third commit admitted while both flushes were still in flight"
    );
    assert!(db.metrics().snapshot().commit_inflight_peak >= 2);

    // Open the gate: flushes land, the budget frees, the commit goes
    // through, and everything becomes durable.
    data.open();
    committer.join().unwrap();
    assert!(done.load(Ordering::Acquire));
    db.wait_for_durability().unwrap();
    for (key, seed) in [(b"a", 1u64), (b"b", 1), (b"c", 1)] {
        let mut t = db.begin();
        let out = t.get_blob(&rel, key, |b| b.to_vec()).unwrap();
        t.commit().unwrap();
        assert_eq!(out, pattern(400 * 1024, seed));
    }
}

// -------------------------------------------- fused fill+hash, serial ---

/// `fill_extent_hashed` copies and hashes in one pass; the stored SHA-256
/// must still match the content for both pool variants (scrub verifies).
#[test]
fn fused_fill_hash_matches_scrub_both_variants() {
    for (label, variant) in [
        ("vm", PoolVariant::Vm { alias: None }),
        ("ht", PoolVariant::Ht),
    ] {
        let cfg = Config {
            pool_variant: variant,
            ..pipelined_cfg()
        };
        let db = Database::create(
            Arc::new(MemDevice::new(256 << 20)),
            Arc::new(MemDevice::new(64 << 20)),
            cfg,
        )
        .unwrap();
        let rel = db.create_relation("b", RelationKind::Blob).unwrap();
        for (i, size) in [0usize, 1, 4096, 70_000, 1_000_000].iter().enumerate() {
            let data = pattern(*size, i as u64 + 10);
            let mut t = db.begin();
            t.put_blob(&rel, &(i as u64).to_be_bytes(), &data).unwrap();
            t.commit().unwrap();
            let mut t = db.begin();
            let out = t
                .get_blob(&rel, &(i as u64).to_be_bytes(), |b| b.to_vec())
                .unwrap();
            t.commit().unwrap();
            assert_eq!(out, data, "{label} size {size}");
        }
        db.wait_for_durability().unwrap();
        let report = db.scrub().unwrap();
        assert!(report.is_clean(), "{label}: {:?}", report.corrupt);
        assert_eq!(report.blobs, 5, "{label}");
    }
}

/// `commit_inflight_flushes = 1` is the serial ablation: no flush stage is
/// spawned, so the in-flight gauge never moves, yet commits stay correct.
#[test]
fn serial_mode_roundtrip_without_pipeline() {
    let mut cfg = pipelined_cfg();
    cfg.commit_inflight_flushes = 1;
    let db = Database::create(
        Arc::new(MemDevice::new(256 << 20)),
        Arc::new(MemDevice::new(64 << 20)),
        cfg,
    )
    .unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    for i in 0..6u64 {
        let mut t = db.begin();
        t.put_blob(&rel, &i.to_be_bytes(), &pattern(120_000, i))
            .unwrap();
        t.commit().unwrap();
    }
    db.wait_for_durability().unwrap();
    let m = db.metrics().snapshot();
    assert_eq!(m.commit_inflight_peak, 0, "serial mode must not pipeline");
    assert!(m.commit_flush_batches >= 1);
    assert_eq!(m.commit_errors, 0);
    for i in 0..6u64 {
        let mut t = db.begin();
        let out = t.get_blob(&rel, &i.to_be_bytes(), |b| b.to_vec()).unwrap();
        t.commit().unwrap();
        assert_eq!(out, pattern(120_000, i), "blob {i}");
    }
    assert!(db.scrub().unwrap().is_clean());
}

// ------------------------------- delete racing an in-flight flush ---

/// A delete whose blob has an extent flush still in flight must not
/// deadlock the pipeline: the delete's group is metadata-only (nothing to
/// flush), but retiring it drops + frees the blob's extents, and
/// `drop_extent` spin-waits on the in-flight batch's shared latches — on
/// the flush-stage thread itself, the only thread that can ever reap that
/// batch. The flush stage must wait the conflicting flight out first.
#[test]
fn delete_racing_inflight_append_flush_does_not_deadlock() {
    let data = Arc::new(GateDevice::new(256 << 20));
    let wal = Arc::new(MemDevice::new(64 << 20));
    let db = Database::create(data.clone(), wal, pipelined_cfg()).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();

    // Blob with a partially-filled tail extent, fully durable.
    let mut t = db.begin();
    t.put_blob(&rel, b"x", &pattern(300_000, 3)).unwrap();
    t.commit().unwrap();
    db.wait_for_durability().unwrap();
    let flushes = |db: &Database| db.metrics().snapshot().commit_flush_batches;
    let base = flushes(&db);

    // Append: dirties the existing tail extent; its flush wedges on the
    // gate holding shared latches on the blob's extents.
    data.close();
    let mut t = db.begin();
    t.append_blob(&rel, b"x", &pattern(100_000, 4)).unwrap();
    t.commit().unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || flushes(&db) == base + 1),
        "append flush never submitted"
    );

    // Delete the same blob: its metadata-only group frees the extents the
    // stuck flight is still latching.
    let mut t = db.begin();
    t.delete_blob(&rel, b"x").unwrap();
    t.commit().unwrap();
    // Give the flush stage time to pick the delete group up (pre-fix this
    // is where it wedged spinning in drop_extent).
    std::thread::sleep(Duration::from_millis(200));

    // Open the gate: the append flush lands, the delete retires, the
    // frontier advances. Pre-fix, the spinning flush stage never reaped
    // the landed flight and this wait hung forever.
    data.open();
    let done = Arc::new(AtomicBool::new(false));
    let waiter = {
        let db = db.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            db.wait_for_durability().unwrap();
            done.store(true, Ordering::Release);
        })
    };
    assert!(
        wait_until(Duration::from_secs(20), || done.load(Ordering::Acquire)),
        "durability frontier stuck: delete group deadlocked the flush stage"
    );
    waiter.join().unwrap();

    let mut t = db.begin();
    assert!(
        t.get_blob(&rel, b"x", |b| b.to_vec()).is_err(),
        "deleted blob still readable"
    );
    t.commit().unwrap();
    assert_eq!(db.metrics().snapshot().commit_errors, 0);
    assert!(db.scrub().unwrap().is_clean());
}
