//! Property tests for the log-bucketed latency histogram.

use lobster_metrics::hist::{bucket_index, bucket_lower_bound, bucket_upper_bound, BUCKETS};
use lobster_metrics::{HistSnapshot, Histogram, LocalRecorder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in a bucket whose [lower, upper] range contains it.
    #[test]
    fn bucket_bounds_contain_value(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(bucket_lower_bound(i) <= v);
        prop_assert!(v <= bucket_upper_bound(i));
    }

    /// Bucket index is monotone: a larger value never maps to an earlier
    /// bucket.
    #[test]
    fn bucket_index_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// Merging any partition of the values across per-thread recorders
    /// (merged concurrently) equals recording them all serially.
    #[test]
    fn concurrent_merge_equals_serial(
        values in proptest::collection::vec(0u64..u64::MAX, 1..400),
        threads in 1usize..6,
    ) {
        let serial = Histogram::new();
        for &v in &values {
            serial.record(v);
        }

        let shared = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..threads {
                let chunk: Vec<u64> = values
                    .iter()
                    .copied()
                    .skip(t)
                    .step_by(threads)
                    .collect();
                let shared = &shared;
                s.spawn(move || {
                    let mut rec = LocalRecorder::new();
                    for v in chunk {
                        rec.record(v);
                    }
                    shared.merge_recorder(&rec);
                });
            }
        });

        prop_assert_eq!(shared.snapshot(), serial.snapshot());
    }

    /// p50 <= p95 <= p99 <= max for any recorded distribution, and the
    /// percentile estimate never undershoots the true value's bucket floor.
    #[test]
    fn percentiles_monotone(values in proptest::collection::vec(0u64..u64::MAX, 1..400)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.percentile(50.0);
        let p95 = s.percentile(95.0);
        let p99 = s.percentile(99.0);
        prop_assert!(p50 <= p95);
        prop_assert!(p95 <= p99);
        prop_assert!(p99 <= s.max());
        let true_max = *values.iter().max().unwrap();
        prop_assert_eq!(s.max(), true_max);
        prop_assert_eq!(s.count(), values.len() as u64);
    }

    /// Windowed deltas: (A then B) - (A) == (B) bucket-for-bucket.
    #[test]
    fn snapshot_sub_is_window(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000_000, 1..100),
    ) {
        let h = Histogram::new();
        for &v in &a {
            h.record(v);
        }
        let mid = h.snapshot();
        for &v in &b {
            h.record(v);
        }
        let window = h.snapshot() - mid;

        let only_b = Histogram::new();
        for &v in &b {
            only_b.record(v);
        }
        // `max` in a window is the end-of-window max (upper bound), so
        // compare counts and sums through the percentile surface instead.
        prop_assert_eq!(window.count(), only_b.snapshot().count());
        prop_assert_eq!(window.mean(), only_b.snapshot().mean());
        let same: HistSnapshot = window.clone() - HistSnapshot::default();
        prop_assert_eq!(same, window);
    }
}
