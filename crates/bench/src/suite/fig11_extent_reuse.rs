//! Figure 11: performance as storage utilization rises — 80 % allocations
//! (1–10 MB objects) / 20 % deletions until the volume is full.
//!
//! Paper shape: every file system except F2FS drops in throughput as the
//! storage approaches its limit (their anti-fragmentation machinery stops
//! working near-full), while our per-tier exact-size free lists keep
//! performance flat; all systems eventually stop at capacity.

use crate::*;
use lobster_baselines::{FsProfile, LobsterMode, ModelFs, ObjectStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Run the churn on one store; returns (utilization, ops/s) curve points.
fn churn(store: &dyn ObjectStore, device_bytes: usize) -> Vec<(f64, f64)> {
    let mut rng = StdRng::seed_from_u64(11);
    let mut live: Vec<u64> = Vec::new();
    let mut next_key = 0u64;
    let mut points = Vec::new();
    let mut ops_in_bucket = 0u64;
    let mut bucket_start = Instant::now();
    let mut last_util_bucket = 0u64;
    let _ = device_bytes;

    loop {
        let op_is_alloc = live.is_empty() || rng.gen_bool(0.8);
        let ok = if op_is_alloc {
            let size = rng.gen_range((1 << 20)..=(10 << 20));
            let key = next_key;
            next_key += 1;
            match store.put(&key_name(key), &make_payload(size, key)) {
                Ok(()) => {
                    live.push(key);
                    true
                }
                Err(_) => false, // full
            }
        } else {
            let idx = rng.gen_range(0..live.len());
            let key = live.swap_remove(idx);
            store.delete(&key_name(key)).is_ok()
        };
        if !ok {
            // Storage exhausted: emit the final bucket and stop.
            let secs = bucket_start.elapsed().as_secs_f64();
            if ops_in_bucket > 0 && secs > 0.0 {
                points.push((store.stats().utilization, ops_in_bucket as f64 / secs));
            }
            break;
        }
        ops_in_bucket += 1;

        // Emit a point every 5% of utilization.
        let util = store.stats().utilization;
        let bucket = (util * 20.0) as u64;
        if bucket > last_util_bucket {
            last_util_bucket = bucket;
            let secs = bucket_start.elapsed().as_secs_f64();
            points.push((util, ops_in_bucket as f64 / secs.max(1e-9)));
            ops_in_bucket = 0;
            bucket_start = Instant::now();
        }
    }
    points
}

pub(crate) fn run(report: &mut Report) {
    banner(
        "Figure 11 — throughput vs storage utilization (80% alloc / 20% delete)",
        "§V-G Figure 11",
    );
    // Small volume so the churn fills it quickly.
    let device_bytes = (scaled(768) << 20).max(256 << 20);
    println!("volume size: {}", fmt_bytes(device_bytes as f64));

    let mut table = Table::new(&["system", "util", "ops/s", "", "stable?"]);
    let mut results: Vec<(String, Vec<(f64, f64)>)> = Vec::new();

    // Our engine (on a device of exactly the volume size).
    {
        let store = lobster_baselines::LobsterStore::new(
            "Our",
            mem_device(device_bytes),
            mem_device(256 << 20),
            our_config(1),
            LobsterMode::Blobs,
        )
        .expect("create");
        results.push(("Our".into(), churn(&store, device_bytes)));
    }
    for profile in [
        FsProfile::ext4_ordered(),
        FsProfile::xfs(),
        FsProfile::btrfs(),
        FsProfile::f2fs(),
    ] {
        let fs = ModelFs::new(profile, mem_device(device_bytes), 16 * 1024);
        results.push((profile.name.to_string(), churn(&fs, device_bytes)));
    }

    for (name, points) in &results {
        if points.is_empty() {
            continue;
        }
        // Early throughput = mean of points below 50% utilization;
        // late = mean above 80%.
        let early: Vec<f64> = points
            .iter()
            .filter(|(u, _)| (0.1..0.5).contains(u)) // skip allocator warmup
            .map(|(_, r)| *r)
            .collect();
        let late: Vec<f64> = points
            .iter()
            .filter(|(u, _)| *u >= 0.8)
            .map(|(_, r)| *r)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let (e, l) = (mean(&early), mean(&late));
        let retained = if e > 0.0 { l / e } else { 0.0 };
        report.push(Entry::throughput(name, e).param("utilization", "<50%"));
        report.push(Entry::throughput(name, l).param("utilization", ">=80%"));
        report.push(Entry::new(
            name,
            "throughput_retained",
            "frac",
            retained,
            true,
        ));
        table.row(&[
            name.clone(),
            "<50%".into(),
            fmt_rate(e),
            format!("  >=80%: {}", fmt_rate(l)),
            format!("{:.0}% retained", retained * 100.0),
        ]);
    }
    table.print();
    println!("\npaper: all file systems except F2FS degrade near-full; Our stays stable");
}
