//! Quickstart: the full BLOB life-cycle on a file-backed database.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lobster::core::{Config, Database, RelationKind};
use lobster::storage::FileDevice;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A real file-backed database + WAL in a temp directory.
    let dir = std::env::temp_dir().join(format!("lobster-quickstart-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let data_path = dir.join("data.lobster");
    let wal_path = dir.join("wal.lobster");

    let device = Arc::new(FileDevice::create(&data_path, 256 << 20)?);
    let wal = Arc::new(FileDevice::create(&wal_path, 64 << 20)?);
    let db = Database::create(device, wal, Config::default())?;
    println!("created database at {}", data_path.display());

    // Relations appear as directories in the filesystem facade.
    let images = db.create_relation("image", RelationKind::Blob)?;

    // --- Store a BLOB: one transaction, one content write -----------------
    let cat = vec![0xCAu8; 2 * 1024 * 1024]; // a 2 MiB "image"
    let mut txn = db.begin();
    txn.put_blob(&images, b"cat.png", &cat)?;
    txn.commit()?;
    println!("stored cat.png ({} bytes)", cat.len());

    // --- Read it back (zero-copy contiguous view through aliasing) --------
    let mut txn = db.begin();
    let (len, first, last) = txn.get_blob(&images, b"cat.png", |data| {
        (data.len(), data[0], data[data.len() - 1])
    })?;
    txn.commit()?;
    println!("read back {len} bytes (first={first:#x}, last={last:#x})");

    // --- The Blob State: size, SHA-256, extent layout ----------------------
    let mut txn = db.begin();
    let state = txn.blob_state(&images, b"cat.png")?.expect("exists");
    txn.commit()?;
    println!(
        "blob state: size={}, {} extents, sha256 starts {:02x}{:02x}…",
        state.size,
        state.extents.len(),
        state.sha256[0],
        state.sha256[1]
    );

    // --- Grow it: the SHA-256 resumes from the stored midstate ------------
    let mut txn = db.begin();
    txn.append_blob(&images, b"cat.png", &[0xFEu8; 100_000])?;
    txn.commit()?;
    println!("appended 100 KB without re-reading the original content");

    // --- Transactions are real: abort rolls everything back ---------------
    let mut txn = db.begin();
    txn.put_blob(&images, b"mistake.png", &[0u8; 1000])?;
    txn.abort();
    let mut txn = db.begin();
    assert!(txn.blob_state(&images, b"mistake.png")?.is_none());
    txn.commit()?;
    println!("aborted transaction left no trace");

    // --- Delete: extents go back to the per-tier free lists ----------------
    let before = db.allocator().pages_in_use();
    let mut txn = db.begin();
    txn.delete_blob(&images, b"cat.png")?;
    txn.commit()?;
    println!(
        "deleted cat.png: {} pages recycled",
        before - db.allocator().pages_in_use()
    );

    // --- What did all this cost? ------------------------------------------
    let m = db.metrics().snapshot();
    println!("\nengine metrics:\n{m}");

    db.shutdown()?;
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
