use std::fmt;
use std::io;

/// Unified error type for all LOBSTER crates.
#[derive(Debug)]
pub enum Error {
    /// An operating-system I/O failure.
    Io(io::Error),
    /// On-storage data failed validation (bad checksum, truncated record,
    /// malformed page). Recovery treats affected transactions as failed.
    Corruption(String),
    /// A key already exists in a unique relation or index.
    KeyExists,
    /// The requested key does not exist.
    KeyNotFound,
    /// The transaction lost a lock conflict and must abort (wait-die).
    TxnConflict,
    /// The transaction was already aborted.
    TxnAborted,
    /// The device has no free extent of the required size.
    OutOfSpace,
    /// The buffer pool could not free enough frames.
    BufferFull,
    /// A BLOB exceeds the maximum representable size for the configured tier
    /// table (more than [`crate::MAX_EXTENTS_PER_BLOB`] extents needed).
    BlobTooLarge,
    /// Caller error: bad argument, out-of-range offset, etc.
    InvalidArgument(String),
    /// The operation is not supported by this backend (e.g. writing through
    /// the read-only file facade).
    Unsupported(&'static str),
}

pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Corruption(msg) => write!(f, "data corruption: {msg}"),
            Error::KeyExists => write!(f, "key already exists"),
            Error::KeyNotFound => write!(f, "key not found"),
            Error::TxnConflict => write!(f, "transaction conflict; aborted by wait-die"),
            Error::TxnAborted => write!(f, "transaction already aborted"),
            Error::OutOfSpace => write!(f, "storage device is full"),
            Error::BufferFull => write!(f, "buffer pool exhausted"),
            Error::BlobTooLarge => write!(f, "blob exceeds maximum representable size"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// Errors that leave the transaction usable (caller mistakes) versus
    /// errors that poison it.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::TxnConflict | Error::BufferFull) || self.is_transient_io()
    }

    /// Transient device failures worth retrying at the I/O boundary.
    ///
    /// Classification follows the `io::ErrorKind` convention used across
    /// the storage layer: `Interrupted`, `TimedOut`, and `WouldBlock` are
    /// momentary conditions (EINTR, controller hiccup, queue pressure)
    /// that a bounded-backoff retry is expected to clear, while every
    /// other kind (`Other` in particular, which fault injection uses for
    /// permanent EIO) is treated as a hard fault and surfaced immediately.
    pub fn is_transient_io(&self) -> bool {
        match self {
            Error::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let variants: Vec<Error> = vec![
            Error::Io(io::Error::other("boom")),
            Error::Corruption("bad".into()),
            Error::KeyExists,
            Error::KeyNotFound,
            Error::TxnConflict,
            Error::TxnAborted,
            Error::OutOfSpace,
            Error::BufferFull,
            Error::BlobTooLarge,
            Error::InvalidArgument("x".into()),
            Error::Unsupported("y"),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn retryable_classification() {
        assert!(Error::TxnConflict.is_retryable());
        assert!(Error::BufferFull.is_retryable());
        assert!(!Error::KeyNotFound.is_retryable());
    }

    #[test]
    fn transient_io_classification() {
        let transient: Error = io::Error::new(io::ErrorKind::Interrupted, "eintr").into();
        assert!(transient.is_transient_io());
        assert!(transient.is_retryable());
        let timed_out: Error = io::Error::new(io::ErrorKind::TimedOut, "slow").into();
        assert!(timed_out.is_transient_io());
        let permanent: Error = io::Error::other("dead controller").into();
        assert!(!permanent.is_transient_io());
        assert!(!permanent.is_retryable());
        assert!(!Error::Corruption("rot".into()).is_transient_io());
    }

    #[test]
    fn io_conversion_keeps_source() {
        let e: Error = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
