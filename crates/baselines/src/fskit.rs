//! Parameterized file-system model: ext4 (ordered / data-journal), XFS,
//! BtrFS, and F2FS behaviour over a shared [`Device`].
//!
//! The model captures exactly the mechanisms the paper's evaluation
//! attributes costs to:
//!
//! * **syscall crossings** — every operation charges a fixed kernel-entry
//!   cost (busy-wait, deterministic), the overhead §V-B/§V-I measures for
//!   `open`/`fstat`/`close`;
//! * **extent trees** — per-file logical→physical maps whose traversal
//!   depth grows with fragmentation; reads proceed extent by extent,
//!   interleaving computation with I/O (§II "High read cost");
//! * **page cache + `pread` copy** — hits skip the device but every read
//!   still copies kernel → user (the extra memcpy §V-D highlights);
//! * **journaling** — `data=journal` writes file content twice (journal +
//!   in-place), `data=ordered` journals metadata only (§II "Excessive BLOB
//!   writes");
//! * **allocation strategies** — best-effort largest-contiguous for
//!   ext4/XFS/BtrFS degrades near-full (Figure 11), while F2FS's
//!   fixed-size log-structured segments stay O(1).
// lint-allow-file(ordering-audit): baseline cost-model bookkeeping (block/byte counters, fd ids); Relaxed by design, nothing synchronizes on these atomics.

use crate::store::{snapshot_of, ObjectStore, StoreStats};
use lobster_extent::RangeAllocator;
use lobster_metrics::{new_metrics, Metrics};
use lobster_storage::Device;
use lobster_types::{Error, Result};
use lobster_vfs::{Errno, Fd, FileKind, FileStat, FileSystem, EBADF, ENOENT, ENOTDIR};

type VfsResult<T> = std::result::Result<T, Errno>;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BLOCK: usize = 4096;

/// Behavioural parameters of one modeled file system.
#[derive(Clone, Copy, Debug)]
pub struct FsProfile {
    pub name: &'static str,
    /// Journal file content (ext4 `data=journal`).
    pub journal_data: bool,
    /// Journal metadata blocks on create/delete (all but none here).
    pub journal_metadata: bool,
    /// Copy-on-write: replacing content always allocates fresh blocks.
    pub cow: bool,
    /// Log-structured: allocate fixed-size segments (stable near-full).
    pub log_structured: bool,
    /// Kernel-crossing cost charged per system call.
    pub syscall: Duration,
    /// Extent-tree fanout (depth = ceil(log_fanout(extents))).
    pub extent_fanout: usize,
    /// Preferred contiguous allocation in blocks (delayed allocation
    /// gives XFS a larger target).
    pub alloc_target: u64,
    /// Per-page cost of buffered I/O (page-cache allocation, radix-tree
    /// insert, dirty accounting — what write(2)/read(2) pay per 4 KiB).
    pub page_op: Duration,
}

impl FsProfile {
    pub fn ext4_ordered() -> Self {
        FsProfile {
            name: "Ext4.ordered",
            journal_data: false,
            journal_metadata: true,
            cow: false,
            log_structured: false,
            syscall: Duration::from_nanos(1500),
            extent_fanout: 340,
            alloc_target: 2048, // 8 MB best effort
            page_op: Duration::from_nanos(600),
        }
    }

    pub fn ext4_journal() -> Self {
        FsProfile {
            name: "Ext4.journal",
            journal_data: true,
            ..Self::ext4_ordered()
        }
    }

    pub fn xfs() -> Self {
        FsProfile {
            name: "XFS",
            journal_data: false,
            journal_metadata: true,
            cow: false,
            log_structured: false,
            // Cheaper metadata path (the paper: XFS spends the least time
            // in syscalls among the file systems).
            syscall: Duration::from_nanos(1100),
            extent_fanout: 256,
            alloc_target: 4096, // 16 MB delayed allocation
            page_op: Duration::from_nanos(550),
        }
    }

    pub fn btrfs() -> Self {
        FsProfile {
            name: "BtrFS",
            journal_data: false,
            journal_metadata: true,
            cow: true,
            log_structured: false,
            syscall: Duration::from_nanos(1600),
            extent_fanout: 121,
            alloc_target: 2048,
            page_op: Duration::from_nanos(700), // COW metadata per page
        }
    }

    pub fn f2fs() -> Self {
        FsProfile {
            name: "F2FS",
            journal_data: false,
            journal_metadata: true,
            cow: false,
            log_structured: true,
            syscall: Duration::from_nanos(1500),
            extent_fanout: 340,
            alloc_target: 512, // 2 MB fixed segments
            page_op: Duration::from_nanos(600),
        }
    }
}

/// Deterministic busy-wait standing in for time spent inside the kernel.
fn spin(d: Duration) {
    if d.is_zero() {
        return;
    }
    let end = Instant::now() + d;
    while Instant::now() < end {
        if d > Duration::from_micros(5) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

struct Inode {
    size: u64,
    /// `(physical_block, blocks)` in logical order.
    extents: Vec<(u64, u64)>,
}

/// Bounded page cache holding real block copies; FIFO eviction keeps the
/// model simple. Shared with the DBMS models.
pub(crate) struct PageCache {
    pages: HashMap<u64, Box<[u8]>>,
    order: VecDeque<u64>,
    budget: usize,
}

impl PageCache {
    pub(crate) fn new(budget_pages: usize) -> Self {
        PageCache {
            pages: HashMap::new(),
            order: VecDeque::new(),
            budget: budget_pages,
        }
    }

    pub(crate) fn get(&self, block: u64) -> Option<&[u8]> {
        self.pages.get(&block).map(|b| &b[..])
    }

    pub(crate) fn insert(&mut self, block: u64, data: Box<[u8]>) {
        if self.pages.insert(block, data).is_none() {
            self.order.push_back(block);
        }
        while self.pages.len() > self.budget {
            let Some(victim) = self.order.pop_front() else {
                break;
            };
            self.pages.remove(&victim);
        }
    }

    pub(crate) fn remove_range(&mut self, start: u64, blocks: u64) {
        for b in start..start + blocks {
            self.pages.remove(&b);
        }
    }

    pub(crate) fn clear(&mut self) {
        self.pages.clear();
        self.order.clear();
    }
}

struct FsInner {
    files: HashMap<String, Inode>,
    cache: PageCache,
    /// Next journal write offset (wraps; the journal is a sliding window).
    journal_pos: u64,
}

struct OpenFile {
    path: String,
    /// Pending content for files being created (materialized at close).
    pending: Option<Vec<u8>>,
}

/// One modeled file system instance.
pub struct ModelFs {
    profile: FsProfile,
    device: Arc<dyn Device>,
    alloc: RangeAllocator,
    inner: Mutex<FsInner>,
    open: Mutex<HashMap<u64, OpenFile>>,
    next_fd: AtomicU64,
    metrics: Metrics,
    /// First data block (after the journal region).
    data_base: u64,
    journal_blocks: u64,
}

impl ModelFs {
    /// Build a model over `device`, reserving 32 MiB for the journal and
    /// `cache_pages` pages of page cache.
    pub fn new(profile: FsProfile, device: Arc<dyn Device>, cache_pages: usize) -> Self {
        let total_blocks = device.capacity() / BLOCK as u64;
        let journal_blocks = (32u64 << 20) / BLOCK as u64;
        assert!(total_blocks > journal_blocks + 16, "device too small");
        ModelFs {
            profile,
            device,
            alloc: RangeAllocator::new(total_blocks - journal_blocks),
            inner: Mutex::new(FsInner {
                files: HashMap::new(),
                cache: PageCache::new(cache_pages),
                journal_pos: 0,
            }),
            open: Mutex::new(HashMap::new()),
            next_fd: AtomicU64::new(3),
            metrics: new_metrics(),
            data_base: journal_blocks,
            journal_blocks,
        }
    }

    pub fn profile(&self) -> &FsProfile {
        &self.profile
    }

    /// Free-space fragments in the block allocator — the aging signal
    /// behind Figure 11 (log-structured profiles stay low; extent-based
    /// ones splinter under churn).
    pub fn fragment_count(&self) -> usize {
        self.alloc.fragment_count()
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Drop the entire page cache (the cold-cache experiments).
    pub fn drop_caches(&self) {
        self.inner.lock().cache.clear();
    }

    fn syscall(&self) {
        self.metrics.bump_syscall();
        spin(self.profile.syscall);
    }

    /// Allocate `blocks` using the profile's strategy; returns extents.
    fn allocate(&self, mut blocks: u64) -> Result<Vec<(u64, u64)>> {
        let mut extents = Vec::new();
        while blocks > 0 {
            if self.profile.log_structured {
                // Fixed-size segments: constant-time exact reuse.
                let seg = self.profile.alloc_target.min(blocks.next_power_of_two());
                let want = seg.min(self.profile.alloc_target).min(blocks.max(1));
                // Round small files up to whole small units to keep the
                // free lists exact-size (log-structured slack).
                let unit = want.next_power_of_two().min(self.profile.alloc_target);
                match self.alloc.allocate(unit) {
                    Ok(start) => {
                        extents.push((start, unit));
                        blocks = blocks.saturating_sub(unit);
                    }
                    Err(e) => {
                        self.rollback(&extents);
                        return Err(e);
                    }
                }
            } else {
                // Best effort: largest contiguous run up to the target,
                // halving on failure — the search that degrades as the
                // volume fills (Figure 11).
                let mut want = self.profile.alloc_target.min(blocks);
                loop {
                    match self.alloc.allocate(want) {
                        Ok(start) => {
                            extents.push((start, want));
                            blocks -= want;
                            break;
                        }
                        Err(_) if want > 1 => {
                            // Fragmented: scanning block-group bitmaps for a
                            // smaller run is the work that makes ext4-style
                            // allocators crawl near-full (Figure 11). The
                            // search cost scales with the number of free
                            // fragments the scan must walk.
                            self.metrics
                                .latch_acquisitions
                                .fetch_add(1, Ordering::Relaxed);
                            let fragments = self.alloc.fragment_count();
                            spin(
                                Duration::from_nanos(200) * fragments as u32
                                    + Duration::from_micros(20),
                            );
                            want = want.div_ceil(2);
                        }
                        Err(e) => {
                            self.rollback(&extents);
                            return Err(e);
                        }
                    }
                }
            }
        }
        Ok(extents)
    }

    fn rollback(&self, extents: &[(u64, u64)]) {
        for &(start, len) in extents {
            self.alloc.free(start, len);
        }
    }

    /// Depth of the extent tree for `n` extents (1 node holds `fanout`).
    fn tree_depth(&self, n: usize) -> u64 {
        let mut depth = 1u64;
        let mut capacity = self.profile.extent_fanout;
        while capacity < n.max(1) {
            depth += 1;
            capacity *= self.profile.extent_fanout;
        }
        depth
    }

    fn journal_write(&self, bytes: usize) -> Result<()> {
        let blocks = (bytes.div_ceil(BLOCK)) as u64;
        let mut inner = self.inner.lock();
        let pos = inner.journal_pos;
        inner.journal_pos = (pos + blocks) % self.journal_blocks.max(1);
        drop(inner);
        // Journal writes are sequential appends.
        let zeros = vec![0u8; (blocks as usize * BLOCK).min(self.journal_blocks as usize * BLOCK)];
        let off = (pos % self.journal_blocks) * BLOCK as u64;
        let fit =
            ((self.journal_blocks - pos % self.journal_blocks) as usize * BLOCK).min(zeros.len());
        self.device.write_at(&zeros[..fit], off)?;
        self.metrics
            .wal_bytes
            .fetch_add(zeros.len() as u64, Ordering::Relaxed);
        self.metrics
            .pages_written
            .fetch_add(blocks, Ordering::Relaxed);
        self.metrics
            .bytes_written
            .fetch_add(zeros.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Materialize a created file: allocate, write data (and journal it in
    /// data=journal mode), update metadata.
    fn materialize(&self, path: &str, data: &[u8]) -> Result<()> {
        let blocks = (data.len().div_ceil(BLOCK) as u64).max(1);
        // Buffered write: per-page page-cache work.
        spin(self.profile.page_op * blocks as u32);
        let extents = self.allocate(blocks)?;

        // data=journal: content goes to the journal first (the second
        // copy), then in place.
        if self.profile.journal_data {
            self.journal_write(data.len())?;
        }
        // In-place data write, extent by extent; write-through page cache
        // (user → kernel copy counted).
        let mut off = 0usize;
        let mut inner = self.inner.lock();
        for &(start, len) in &extents {
            let ext_bytes = (len as usize) * BLOCK;
            let take = (data.len() - off).min(ext_bytes);
            if take > 0 {
                let mut buf = vec![0u8; take.div_ceil(BLOCK) * BLOCK];
                buf[..take].copy_from_slice(&data[off..off + take]);
                self.metrics.bump_memcpy(take as u64);
                self.device
                    .write_at(&buf, (self.data_base + start) * BLOCK as u64)?;
                self.metrics
                    .pages_written
                    .fetch_add(buf.len() as u64 / BLOCK as u64, Ordering::Relaxed);
                self.metrics
                    .bytes_written
                    .fetch_add(buf.len() as u64, Ordering::Relaxed);
                for (i, chunk) in buf.chunks(BLOCK).enumerate() {
                    inner
                        .cache
                        .insert(self.data_base + start + i as u64, chunk.to_vec().into());
                }
            }
            off += take;
        }
        // Metadata journal commit (inode + allocation bitmaps).
        drop(inner);
        if self.profile.journal_metadata {
            self.journal_write(BLOCK)?;
        }
        let mut inner = self.inner.lock();
        if let Some(old) = inner.files.insert(
            path.to_string(),
            Inode {
                size: data.len() as u64,
                extents: extents.clone(),
            },
        ) {
            // Replaced file: free old blocks (COW frees after commit too).
            for (start, len) in old.extents {
                inner.cache.remove_range(self.data_base + start, len);
                self.alloc.free(start, len);
            }
        }
        self.metrics.metadata_ops.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Read a byte range of a file into `buf`: extent-tree traversal, page
    /// cache, and the kernel→user copy.
    fn read_range(&self, path: &str, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let (extents, size) = {
            let inner = self.inner.lock();
            let inode = inner.files.get(path).ok_or(Error::KeyNotFound)?;
            (inode.extents.clone(), inode.size)
        };
        if offset >= size {
            return Ok(0);
        }
        let want = (buf.len() as u64).min(size - offset) as usize;
        // Buffered read: per-page page-cache lookups.
        spin(self.profile.page_op * (want.div_ceil(BLOCK) as u32));

        // Extent-tree traversal: one lookup per touched extent, each
        // costing `depth` node visits (computation interleaved with I/O).
        let depth = self.tree_depth(extents.len());

        let mut done = 0usize;
        let mut logical = offset;
        while done < want {
            // Locate the extent containing `logical`.
            self.metrics
                .btree_node_accesses
                .fetch_add(depth, Ordering::Relaxed);
            let mut scan = 0u64;
            let mut found = None;
            for &(start, len) in &extents {
                let ext_bytes = len * BLOCK as u64;
                if logical < scan + ext_bytes {
                    found = Some((start, len, logical - scan));
                    break;
                }
                scan += ext_bytes;
            }
            let Some((start, len, off_in_ext)) = found else {
                break;
            };
            let take = ((len * BLOCK as u64 - off_in_ext) as usize).min(want - done);

            // Per-block cache check; misses read the whole remainder of
            // the extent from the device in one request.
            let first_block = self.data_base + start + off_in_ext / BLOCK as u64;
            let blocks_needed = (off_in_ext % BLOCK as u64 + take as u64).div_ceil(BLOCK as u64);
            let mut inner = self.inner.lock();
            let all_cached = (0..blocks_needed).all(|i| inner.cache.get(first_block + i).is_some());
            if all_cached {
                self.metrics
                    .cache_hits
                    .fetch_add(blocks_needed, Ordering::Relaxed);
                let mut copied = 0usize;
                let mut block_off = (off_in_ext % BLOCK as u64) as usize;
                for i in 0..blocks_needed {
                    let page = inner.cache.get(first_block + i).expect("checked");
                    let n = (BLOCK - block_off).min(take - copied);
                    buf[done + copied..done + copied + n]
                        .copy_from_slice(&page[block_off..block_off + n]);
                    copied += n;
                    block_off = 0;
                }
            } else {
                self.metrics
                    .cache_misses
                    .fetch_add(blocks_needed, Ordering::Relaxed);
                // Readahead is disabled (§V-A), so a cold buffered read
                // faults pages in one block at a time — the behaviour
                // behind the paper's 59 MB/s ext4 read ceiling.
                let mut raw = vec![0u8; (blocks_needed as usize) * BLOCK];
                for i in 0..blocks_needed as usize {
                    self.device.read_at(
                        &mut raw[i * BLOCK..(i + 1) * BLOCK],
                        (first_block + i as u64) * BLOCK as u64,
                    )?;
                }
                self.metrics
                    .pages_read
                    .fetch_add(blocks_needed, Ordering::Relaxed);
                self.metrics
                    .bytes_read
                    .fetch_add(raw.len() as u64, Ordering::Relaxed);
                for (i, chunk) in raw.chunks(BLOCK).enumerate() {
                    inner
                        .cache
                        .insert(first_block + i as u64, chunk.to_vec().into());
                }
                let block_off = (off_in_ext % BLOCK as u64) as usize;
                buf[done..done + take].copy_from_slice(&raw[block_off..block_off + take]);
            }
            // The pread kernel→user copy.
            self.metrics.bump_memcpy(take as u64);
            done += take;
            logical += take as u64;
        }
        Ok(done)
    }

    fn delete_file(&self, path: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        let inode = inner.files.remove(path).ok_or(Error::KeyNotFound)?;
        for (start, len) in inode.extents {
            inner.cache.remove_range(self.data_base + start, len);
            if self.profile.log_structured || len < 8 {
                self.alloc.free(start, len);
            } else {
                // Extent-based allocators do not keep freed space as
                // ready-to-reuse exact-size runs: merges/splits against
                // neighbours fragment it (the aging §VI discusses). Model:
                // a freed run returns as two halves, so churn erodes the
                // large-run supply and best-effort allocation degrades
                // near-full — except for F2FS's fixed segments.
                let half = len / 2;
                self.alloc.free(start, half);
                self.alloc.free(start + half, len - half);
            }
        }
        drop(inner);
        if self.profile.journal_metadata {
            self.journal_write(BLOCK)?;
        }
        self.metrics.metadata_ops.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

// ------------------------------------------------------------ ObjectStore

impl ObjectStore for ModelFs {
    fn label(&self) -> &str {
        self.profile.name
    }

    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        // open(O_CREAT) + write + close.
        self.syscall();
        self.syscall();
        self.syscall();
        if self.inner.lock().files.contains_key(key) {
            return Err(Error::KeyExists);
        }
        self.materialize(key, data)
    }

    fn replace(&self, key: &str, data: &[u8]) -> Result<()> {
        self.syscall();
        self.syscall();
        self.syscall();
        if self.profile.cow {
            // COW: always fresh blocks; materialize frees the old copy.
            self.materialize(key, data)
        } else {
            // Overwrite via truncate + rewrite (ftruncate = 1 more syscall).
            self.syscall();
            match self.delete_file(key) {
                Ok(()) | Err(Error::KeyNotFound) => {}
                Err(e) => return Err(e),
            }
            self.materialize(key, data)
        }
    }

    fn get(&self, key: &str, f: &mut dyn FnMut(&[u8])) -> Result<()> {
        // open + fstat + read(s) + close.
        self.syscall();
        self.syscall();
        let size = {
            let inner = self.inner.lock();
            inner.files.get(key).ok_or(Error::KeyNotFound)?.size
        };
        let mut buf = vec![0u8; size as usize];
        self.syscall();
        let n = self.read_range(key, 0, &mut buf)?;
        self.syscall();
        f(&buf[..n]);
        Ok(())
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.syscall();
        self.delete_file(key)
    }

    fn stat(&self, key: &str) -> Result<Option<u64>> {
        self.syscall();
        self.metrics.metadata_ops.fetch_add(1, Ordering::Relaxed);
        Ok(self.inner.lock().files.get(key).map(|i| i.size))
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            metrics: snapshot_of(&self.metrics),
            utilization: self.alloc.utilization(),
        }
    }
}

// ------------------------------------------------------------- FileSystem

impl FileSystem for ModelFs {
    fn open(&self, path: &str) -> VfsResult<Fd> {
        self.syscall();
        if !self.inner.lock().files.contains_key(path) {
            return Err(ENOENT);
        }
        let fd = Fd(self.next_fd.fetch_add(1, Ordering::Relaxed));
        self.open.lock().insert(
            fd.0,
            OpenFile {
                path: path.to_string(),
                pending: None,
            },
        );
        Ok(fd)
    }

    fn read(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> VfsResult<usize> {
        self.syscall();
        let path = {
            let open = self.open.lock();
            open.get(&fd.0).ok_or(EBADF)?.path.clone()
        };
        self.read_range(&path, offset, buf).map_err(|e| match e {
            Error::KeyNotFound => ENOENT,
            _ => Errno(5),
        })
    }

    fn close(&self, fd: Fd) -> VfsResult<()> {
        self.syscall();
        let of = self.open.lock().remove(&fd.0).ok_or(EBADF)?;
        if let Some(pending) = of.pending {
            self.materialize(&of.path, &pending).map_err(|_| Errno(5))?;
        }
        Ok(())
    }

    fn getattr(&self, path: &str) -> VfsResult<FileStat> {
        self.syscall();
        self.metrics.metadata_ops.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.lock();
        match inner.files.get(path) {
            Some(inode) => Ok(FileStat {
                kind: FileKind::File,
                size: inode.size,
            }),
            None => {
                // Directories are implicit: a path is a directory iff some
                // file lives beneath it.
                let prefix = format!("{}/", path.trim_end_matches('/'));
                if path == "/" || inner.files.keys().any(|k| k.starts_with(&prefix)) {
                    Ok(FileStat {
                        kind: FileKind::Directory,
                        size: 0,
                    })
                } else {
                    Err(ENOENT)
                }
            }
        }
    }

    fn readdir(&self, path: &str) -> VfsResult<Vec<String>> {
        self.syscall();
        let prefix = format!("{}/", path.trim_end_matches('/'));
        let inner = self.inner.lock();
        let mut names: Vec<String> = inner
            .files
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .map(|k| {
                k[prefix.len()..]
                    .split('/')
                    .next()
                    .unwrap_or("")
                    .to_string()
            })
            .collect();
        names.sort();
        names.dedup();
        if names.is_empty() && !inner.files.keys().any(|k| k.starts_with(&prefix)) {
            return Err(ENOTDIR);
        }
        Ok(names)
    }

    fn write(&self, fd: Fd, offset: u64, data: &[u8]) -> VfsResult<usize> {
        self.syscall();
        let mut open = self.open.lock();
        let of = open.get_mut(&fd.0).ok_or(EBADF)?;
        let pending = of.pending.get_or_insert_with(Vec::new);
        let end = offset as usize + data.len();
        if pending.len() < end {
            pending.resize(end, 0);
        }
        pending[offset as usize..end].copy_from_slice(data);
        self.metrics.bump_memcpy(data.len() as u64);
        Ok(data.len())
    }

    fn create(&self, path: &str) -> VfsResult<Fd> {
        self.syscall();
        let fd = Fd(self.next_fd.fetch_add(1, Ordering::Relaxed));
        self.open.lock().insert(
            fd.0,
            OpenFile {
                path: path.to_string(),
                pending: Some(Vec::new()),
            },
        );
        Ok(fd)
    }

    fn unlink(&self, path: &str) -> VfsResult<()> {
        self.syscall();
        self.delete_file(path).map_err(|e| match e {
            Error::KeyNotFound => ENOENT,
            _ => Errno(5),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_storage::MemDevice;
    use lobster_vfs::{read_to_vec, write_all};

    fn all_profiles() -> Vec<FsProfile> {
        vec![
            FsProfile::ext4_ordered(),
            FsProfile::ext4_journal(),
            FsProfile::xfs(),
            FsProfile::btrfs(),
            FsProfile::f2fs(),
        ]
    }

    fn fast(mut p: FsProfile) -> FsProfile {
        p.syscall = Duration::ZERO; // keep unit tests quick
        p
    }

    fn fs(profile: FsProfile) -> ModelFs {
        ModelFs::new(fast(profile), Arc::new(MemDevice::new(256 << 20)), 4096)
    }

    #[test]
    fn object_roundtrip_all_profiles() {
        for profile in all_profiles() {
            let m = fs(profile);
            let data: Vec<u8> = (0..100_000).map(|i| (i % 251) as u8).collect();
            m.put("file.bin", &data).unwrap();
            let mut out = Vec::new();
            m.get("file.bin", &mut |b| out = b.to_vec()).unwrap();
            assert_eq!(out, data, "{}", m.label());
            assert_eq!(m.stat("file.bin").unwrap(), Some(100_000));
            m.replace("file.bin", b"tiny").unwrap();
            assert_eq!(m.stat("file.bin").unwrap(), Some(4));
            m.delete("file.bin").unwrap();
            assert_eq!(m.stat("file.bin").unwrap(), None);
        }
    }

    #[test]
    fn journal_mode_doubles_data_writes() {
        let ordered = fs(FsProfile::ext4_ordered());
        let journal = fs(FsProfile::ext4_journal());
        let data = vec![7u8; 1 << 20];
        ordered.put("f", &data).unwrap();
        journal.put("f", &data).unwrap();
        let wo = ordered.stats().metrics.pages_written;
        let wj = journal.stats().metrics.pages_written;
        assert!(
            wj as f64 >= wo as f64 * 1.8,
            "journal mode must ~double writes: {wo} vs {wj}"
        );
    }

    #[test]
    fn cold_read_after_cache_drop() {
        let m = fs(FsProfile::ext4_ordered());
        let data = vec![3u8; 500_000];
        m.put("f", &data).unwrap();
        // Warm read: cache hits, no device pages.
        let before = m.stats().metrics;
        let mut out = Vec::new();
        m.get("f", &mut |b| out = b.to_vec()).unwrap();
        let warm = m.stats().metrics - before;
        assert_eq!(warm.pages_read, 0, "warm read must hit the cache");
        assert_eq!(out, data);

        m.drop_caches();
        let before = m.stats().metrics;
        m.get("f", &mut |b| out = b.to_vec()).unwrap();
        let cold = m.stats().metrics - before;
        assert!(cold.pages_read >= 122, "cold read must hit the device");
        assert_eq!(out, data);
    }

    #[test]
    fn fragmentation_increases_extent_count() {
        // Fill, punch holes, then allocate: the best-effort allocator must
        // fall back to scattered extents.
        let m = fs(FsProfile::ext4_ordered());
        for i in 0..100 {
            m.put(&format!("pad{i}"), &vec![1u8; 400_000]).unwrap();
        }
        for i in (0..100).step_by(2) {
            m.delete(&format!("pad{i}")).unwrap();
        }
        let big = vec![2u8; 4 << 20];
        m.put("big", &big).unwrap();
        let mut out = Vec::new();
        m.get("big", &mut |b| out = b.to_vec()).unwrap();
        assert_eq!(out, big);
    }

    #[test]
    fn filesystem_trait_create_write_read() {
        let m = fs(FsProfile::xfs());
        write_all(&m, "/src/main.c", b"int main() {}").unwrap();
        assert_eq!(read_to_vec(&m, "/src/main.c").unwrap(), b"int main() {}");
        let stat = m.getattr("/src/main.c").unwrap();
        assert_eq!(stat.size, 13);
        assert_eq!(m.readdir("/src").unwrap(), vec!["main.c"]);
        m.unlink("/src/main.c").unwrap();
        assert!(m.open("/src/main.c").is_err());
    }

    #[test]
    fn f2fs_stays_stable_near_full() {
        // Churn at ~85 % utilization: log-structured allocation must keep
        // succeeding with exact-size segment reuse.
        let m = fs(FsProfile::f2fs());
        let obj = vec![1u8; 2 << 20];
        let mut live = Vec::new();
        let mut i = 0;
        loop {
            let key = format!("o{i}");
            i += 1;
            match m.put(&key, &obj) {
                Ok(()) => live.push(key),
                Err(_) => break,
            }
            if m.stats().utilization > 0.85 {
                break;
            }
        }
        for round in 0..200 {
            let victim = live.swap_remove(round % live.len());
            m.delete(&victim).unwrap();
            let key = format!("churn{round}");
            m.put(&key, &obj)
                .expect("log-structured reuse must not fail");
            live.push(key);
        }
    }

    #[test]
    fn syscalls_are_counted() {
        let m = fs(FsProfile::ext4_ordered());
        m.put("f", b"x").unwrap();
        let mut sink = Vec::new();
        m.get("f", &mut |b| sink = b.to_vec()).unwrap();
        m.stat("f").unwrap();
        let s = m.stats().metrics;
        assert!(s.syscalls >= 8, "syscalls={}", s.syscalls);
    }
}
