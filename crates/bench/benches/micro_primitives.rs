//! Criterion micro-benchmarks of the primitives the engine's hot paths
//! are built from: resumable SHA-256 (growth ops), B-Tree point ops
//! (metadata path), tier-table math (allocation path), and CRC-32 (WAL
//! framing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lobster_btree::{BTree, LexCmp};
use lobster_buffer::{ExtentPool, PoolConfig};
use lobster_extent::{plan_sequence, ExtentAllocator, TierPolicy, TierTable};
use lobster_sha256::Sha256;
use lobster_storage::{Device, MemDevice};
use lobster_types::{crc32, Geometry, Pid};
use std::sync::Arc;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    let blob = vec![0xABu8; 4 << 20];
    g.throughput(Throughput::Bytes(blob.len() as u64));
    g.bench_function("full_rehash_4MiB", |b| {
        b.iter(|| Sha256::digest(&blob));
    });

    // The paper's growth path: resume from the midstate instead of
    // re-hashing the existing content.
    let mut h = Sha256::new();
    h.update(&blob);
    let mid = h.midstate();
    let tail = &blob[mid.processed as usize..];
    let appended = vec![0xCDu8; 64 * 1024];
    g.throughput(Throughput::Bytes(appended.len() as u64));
    g.bench_function("resume_append_64KiB", |b| {
        b.iter(|| {
            let mut h = Sha256::resume(mid);
            h.update(tail);
            h.update(&appended);
            h.finalize()
        });
    });

    // Per-call dispatch cost: many tiny one-shot digests, so the SHA-NI
    // feature probe in compress_many runs once per digest. With the cached
    // OnceLock detection this is a single load; regressing to a repeated
    // CPUID probe shows up here immediately.
    let small = vec![0x5Au8; 64];
    g.throughput(Throughput::Bytes((small.len() * 1024) as u64));
    g.bench_function("dispatch_1024x64B", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for _ in 0..1024 {
                acc ^= Sha256::digest(&small)[0];
            }
            acc
        });
    });
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    let dev: Arc<dyn Device> = Arc::new(MemDevice::new(256 << 20));
    let pool = ExtentPool::new(
        dev,
        Geometry::new(4096),
        PoolConfig {
            frames: 32 * 1024,
            alias: None,
            io_threads: 1,
            batched_faults: true,
        },
        lobster_metrics::new_metrics(),
    );
    let table = Arc::new(TierTable::new(TierPolicy::default()));
    let alloc = Arc::new(ExtentAllocator::new(table, Pid::new(0), 60_000));
    let tree = BTree::create(pool, alloc, Arc::new(LexCmp), 1).unwrap();
    for k in 0..100_000u32 {
        tree.insert(format!("key{k:09}").as_bytes(), &k.to_le_bytes(), false)
            .unwrap();
    }

    let mut g = c.benchmark_group("btree");
    g.bench_function("lookup_100k", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = (k.wrapping_mul(1103515245).wrapping_add(12345)) % 100_000;
            tree.lookup_map(format!("key{k:09}").as_bytes(), |v| v.len())
                .unwrap()
        });
    });
    g.bench_function("scan_10", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = (k.wrapping_mul(1103515245).wrapping_add(12345)) % 99_000;
            let mut n = 0;
            tree.scan_from(format!("key{k:09}").as_bytes(), |_, _| {
                n += 1;
                n < 10
            })
            .unwrap();
            n
        });
    });
    g.finish();
}

fn bench_tier_math(c: &mut Criterion) {
    let table = TierTable::new(TierPolicy::default());
    let mut g = c.benchmark_group("extent_tier");
    for pages in [25u64, 2_560, 262_144] {
        g.bench_with_input(BenchmarkId::new("plan_sequence", pages), &pages, |b, &p| {
            b.iter(|| plan_sequence(&table, p, false).unwrap());
        });
    }
    g.finish();
}

fn bench_crc32(c: &mut Criterion) {
    let record = vec![0x5Au8; 512];
    let mut g = c.benchmark_group("crc32");
    g.throughput(Throughput::Bytes(record.len() as u64));
    g.bench_function("wal_record_512B", |b| b.iter(|| crc32(&record)));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sha256, bench_btree, bench_tier_math, bench_crc32
}
criterion_main!(benches);
