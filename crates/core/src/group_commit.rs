//! Background group committer (§V-A: "group commit so the critical path
//! usually does not involve I/O").
//!
//! With [`crate::Config::commit_wait`] `false`, [`crate::Txn::commit`]
//! stages its WAL records and flush list here and returns immediately;
//! this thread preserves the single-flush ordering — WAL fsync first, then
//! one batched extent flush — and recycles freed extents afterwards.
//! Multiple queued commits share one fsync. Durability is thus slightly
//! deferred (asynchronous commit); crash recovery still sees a correct
//! prefix of committed transactions.

use lobster_buffer::{BlobPool, FlushItem};
use lobster_extent::{ExtentAllocator, ExtentSpec};
use lobster_metrics::Metrics;
use lobster_types::Result;
use lobster_wal::{LogRecord, Wal};
use parking_lot::{Condvar, Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

pub(crate) struct CommitBatch {
    pub records: Vec<LogRecord>,
    pub toflush: Vec<FlushItem>,
    pub freed: Vec<ExtentSpec>,
}

impl CommitBatch {
    /// Bytes of buffer-pool frames this batch keeps pinned until flushed.
    fn pinned_bytes(&self, page_size: u64) -> u64 {
        self.toflush.iter().map(|i| i.dirty_pages * page_size).sum()
    }
}

struct PinBudget {
    used: Mutex<u64>,
    freed_cv: Condvar,
    limit: u64,
}

pub(crate) struct GroupCommitter {
    tx: Option<crossbeam::channel::Sender<CommitBatch>>,
    enqueued: Arc<AtomicU64>,
    processed: Arc<AtomicU64>,
    budget: Arc<PinBudget>,
    page_size: u64,
    handle: Option<JoinHandle<()>>,
}

impl GroupCommitter {
    pub fn new(
        wal: Arc<Wal>,
        blob_pool: BlobPool,
        alloc: Arc<ExtentAllocator>,
        ckpt_gate: Arc<RwLock<()>>,
        metrics: Metrics,
        page_size: u64,
        pinned_limit_bytes: u64,
    ) -> Self {
        // Backpressure by *bytes*: submitters block while the queue pins
        // more than a quarter-pool of unflushed frames, so the committer
        // lag can never exhaust the buffer pool.
        let (tx, rx) = crossbeam::channel::unbounded::<CommitBatch>();
        let budget = Arc::new(PinBudget {
            used: Mutex::new(0),
            freed_cv: Condvar::new(),
            limit: pinned_limit_bytes.max(page_size),
        });
        let budget2 = budget.clone();
        let enqueued = Arc::new(AtomicU64::new(0));
        let processed = Arc::new(AtomicU64::new(0));
        let processed2 = processed.clone();
        let handle = std::thread::Builder::new()
            .name("lobster-group-commit".into())
            .spawn(move || {
                while let Ok(first) = rx.recv() {
                    // Absorb everything already queued into one group.
                    let mut group = vec![first];
                    while let Ok(next) = rx.try_recv() {
                        group.push(next);
                    }
                    let n = group.len() as u64;
                    let result = (|| -> Result<()> {
                        let _gate = ckpt_gate.read();
                        // 1. All Blob States durable with one fsync.
                        let mut lsn = None;
                        for batch in &group {
                            if !batch.records.is_empty() {
                                lsn = Some(wal.append_batch(&batch.records)?);
                            }
                        }
                        if let Some(lsn) = lsn {
                            wal.commit_to(lsn)?;
                        }
                        // 2. One combined extent flush.
                        let items: Vec<FlushItem> = group
                            .iter()
                            .flat_map(|b| b.toflush.iter().copied())
                            .collect();
                        if !items.is_empty() {
                            blob_pool.flush_extents(&items)?;
                        }
                        // 3. Recycle deletions.
                        for batch in &group {
                            blob_pool.drop_extents(&batch.freed);
                            for spec in &batch.freed {
                                alloc.free_extent(*spec);
                                metrics.extent_frees.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok(())
                    })();
                    // An I/O failure here is a durability loss the
                    // asynchronous-commit mode accepts; surface it loudly.
                    if let Err(e) = result {
                        eprintln!("lobster group committer error: {e}");
                    }
                    let released: u64 = group.iter().map(|b| b.pinned_bytes(page_size)).sum();
                    {
                        let mut used = budget2.used.lock();
                        *used = used.saturating_sub(released);
                        budget2.freed_cv.notify_all();
                    }
                    processed2.fetch_add(n, Ordering::Release);
                }
            })
            .expect("spawn group committer");
        GroupCommitter {
            tx: Some(tx),
            enqueued,
            processed,
            budget,
            page_size,
            handle: Some(handle),
        }
    }

    pub fn submit(&self, batch: CommitBatch) {
        let bytes = batch.pinned_bytes(self.page_size);
        {
            let mut used = self.budget.used.lock();
            // Always admit at least one batch, however large.
            while *used > 0 && *used + bytes > self.budget.limit {
                self.budget.freed_cv.wait(&mut used);
            }
            *used += bytes;
        }
        self.enqueued.fetch_add(1, Ordering::AcqRel);
        self.tx
            .as_ref()
            .expect("committer alive")
            .send(batch)
            .expect("committer thread alive");
    }

    /// Wait until everything submitted so far is durable.
    pub fn drain(&self) {
        let target = self.enqueued.load(Ordering::Acquire);
        while self.processed.load(Ordering::Acquire) < target {
            std::thread::yield_now();
        }
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        self.drain();
        self.tx.take(); // disconnect; the thread exits
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}
