//! The paged B+Tree.
//!
//! * Nodes live in buffer-pool extents of `node_pages` pages and use the
//!   slotted layout of [`crate::node`].
//! * **Leaf nodes apply prefix truncation** when the comparator is
//!   byte-wise (`KeyCmp::bytewise`) — the optimization §V-H credits for the
//!   1K-prefix index reaching the same height as the Blob State index.
//!   Inner nodes store full separator keys, which bounds the space a split
//!   can require in the parent.
//! * Writers descend with exclusive lock coupling and split *preemptively*:
//!   any child that could not absorb a worst-case insert is split while its
//!   parent is still held, so splits never propagate upwards.
//! * Readers descend with shared lock coupling; range scans follow the leaf
//!   chain.
//! * The root PID is stable: a root split moves both halves into fresh
//!   nodes and rewrites the root in place, so catalogs never need updating.

use crate::node::{Node, HEADER, KIND_INNER, KIND_LEAF, SLOT};
use lobster_buffer::{ExtentPool, ShGuard, XGuard};
use lobster_extent::{ExtentAllocator, ExtentSpec};
use lobster_sync::atomic::Ordering as AtomicOrdering;
use lobster_sync::Arc;
use lobster_types::{Error, Pid, Result, INVALID_PID};
use std::cmp::Ordering;

/// Key comparator for a tree.
pub trait KeyCmp: Send + Sync {
    fn cmp_keys(&self, stored: &[u8], probe: &[u8]) -> Ordering;

    /// `true` iff `cmp_keys` is plain byte-wise comparison; enables leaf
    /// prefix truncation.
    fn bytewise(&self) -> bool {
        false
    }
}

/// Byte-wise lexicographic comparison (the common case).
pub struct LexCmp;

impl KeyCmp for LexCmp {
    fn cmp_keys(&self, stored: &[u8], probe: &[u8]) -> Ordering {
        stored.cmp(probe)
    }

    fn bytewise(&self) -> bool {
        true
    }
}

/// Aggregate statistics of a tree (reported in Table III).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TreeStats {
    pub height: u32,
    pub nodes: u64,
    pub leaves: u64,
    pub entries: u64,
    /// Live bytes across all nodes (headers + prefixes + slots + payloads).
    pub used_bytes: u64,
    /// Total bytes of all allocated nodes.
    pub capacity_bytes: u64,
}

/// A paged B+Tree over an [`ExtentPool`].
pub struct BTree {
    pool: Arc<ExtentPool>,
    alloc: Arc<ExtentAllocator>,
    cmp: Arc<dyn KeyCmp>,
    root: Pid,
    node_pages: u64,
}

impl BTree {
    /// Create a new empty tree; allocates the root leaf.
    pub fn create(
        pool: Arc<ExtentPool>,
        alloc: Arc<ExtentAllocator>,
        cmp: Arc<dyn KeyCmp>,
        node_pages: u64,
    ) -> Result<Self> {
        let root_spec = alloc.allocate_tail(node_pages)?;
        {
            let mut g = pool.create_extent(root_spec)?;
            Node::init(&mut g, KIND_LEAF);
            g.mark_dirty();
        }
        Ok(BTree {
            pool,
            alloc,
            cmp,
            root: root_spec.start,
            node_pages,
        })
    }

    /// Reattach to an existing tree rooted at `root`.
    pub fn open(
        pool: Arc<ExtentPool>,
        alloc: Arc<ExtentAllocator>,
        cmp: Arc<dyn KeyCmp>,
        node_pages: u64,
        root: Pid,
    ) -> Self {
        BTree {
            pool,
            alloc,
            cmp,
            root,
            node_pages,
        }
    }

    pub fn root(&self) -> Pid {
        self.root
    }

    pub fn node_pages(&self) -> u64 {
        self.node_pages
    }

    fn node_bytes(&self) -> usize {
        (self.node_pages as usize) * self.pool.geometry().page_size()
    }

    /// Largest `key+value+slot` size an entry may have (quarter-node rule,
    /// guaranteeing a split always makes room).
    pub fn max_entry(&self) -> usize {
        (self.node_bytes() - HEADER) / 4
    }

    fn spec(&self, pid: Pid) -> ExtentSpec {
        ExtentSpec::new(pid, self.node_pages)
    }

    fn bump_node_access(&self) {
        self.pool
            .metrics()
            .btree_node_accesses
            .fetch_add(1, AtomicOrdering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
    }

    // ----------------------------------------------------- comparisons ---

    /// Compare the stored key of slot `i` against `probe`.
    fn cmp_at(&self, buf: &[u8], i: usize, probe: &[u8]) -> Ordering {
        let suffix = Node::key_suffix(buf, i);
        if self.cmp.bytewise() {
            let prefix = Node::prefix(buf);
            let plen = prefix.len();
            let m = plen.min(probe.len());
            match prefix[..m].cmp(&probe[..m]) {
                Ordering::Equal => {
                    if probe.len() < plen {
                        Ordering::Greater
                    } else {
                        suffix.cmp(&probe[plen..])
                    }
                }
                other => other,
            }
        } else {
            self.cmp.cmp_keys(suffix, probe)
        }
    }

    /// First slot whose key is `>= probe`; bool is "exact match".
    fn lower_bound(&self, buf: &[u8], probe: &[u8]) -> (usize, bool) {
        let mut lo = 0usize;
        let mut hi = Node::count(buf);
        let mut exact = false;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.cmp_at(buf, mid, probe) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => {
                    exact = true;
                    hi = mid;
                }
            }
        }
        (lo, exact)
    }

    fn pick_child(&self, buf: &[u8], probe: &[u8]) -> Pid {
        let (i, _) = self.lower_bound(buf, probe);
        if i < Node::count(buf) {
            Node::child(buf, i)
        } else {
            Node::upper(buf)
        }
    }

    // ---------------------------------------------------------- lookup ---

    /// Point lookup; applies `f` to the value if present.
    pub fn lookup_map<R>(&self, key: &[u8], f: impl FnOnce(&[u8]) -> R) -> Result<Option<R>> {
        let mut guard: ShGuard<'_> = self.pool.read_extent(self.spec(self.root))?;
        loop {
            self.bump_node_access();
            if Node::is_leaf(&guard) {
                let (i, exact) = self.lower_bound(&guard, key);
                return Ok(if exact {
                    Some(f(Node::value(&guard, i)))
                } else {
                    None
                });
            }
            let child = self.pick_child(&guard, key);
            guard = self.pool.read_extent(self.spec(child))?;
        }
    }

    /// Point lookup returning an owned value.
    pub fn lookup(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.lookup_map(key, |v| v.to_vec())
    }

    pub fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.lookup_map(key, |_| ())?.is_some())
    }

    // ---------------------------------------------------------- insert ---

    /// Insert `key -> value`. With `overwrite` the value of an existing key
    /// is replaced; otherwise an existing key is a [`Error::KeyExists`].
    /// Returns `true` if a new key was inserted.
    pub fn insert(&self, key: &[u8], value: &[u8], overwrite: bool) -> Result<bool> {
        Ok(self.insert_impl(key, value, overwrite)?.is_none())
    }

    /// Insert or overwrite in a single descent; returns the previous value
    /// if the key existed (the hot path for logged updates, which need the
    /// before image anyway).
    pub fn upsert(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        self.insert_impl(key, value, true)
    }

    fn insert_impl(&self, key: &[u8], value: &[u8], overwrite: bool) -> Result<Option<Vec<u8>>> {
        if key.len() + 8 + SLOT > self.max_entry()
            || key.len() + value.len() + SLOT > self.max_entry()
        {
            return Err(Error::InvalidArgument(format!(
                "entry of {} + {} bytes exceeds max entry {}",
                key.len(),
                value.len(),
                self.max_entry()
            )));
        }
        'restart: loop {
            let mut parent: Option<XGuard<'_>> = None;
            let mut cur_pid = self.root;
            let mut cur = self.pool.write_extent(self.spec(cur_pid))?;
            loop {
                self.bump_node_access();
                if !self.node_is_safe(&cur, key) {
                    match parent.take() {
                        None => {
                            // cur is the root.
                            self.split_root(&mut cur)?;
                            drop(cur);
                            continue 'restart;
                        }
                        Some(mut p) => {
                            self.split_child(&mut p, cur_pid, cur)?;
                            // Re-pick the child from the parent.
                            cur_pid = self.pick_child(&p, key);
                            cur = self.pool.write_extent(self.spec(cur_pid))?;
                            parent = Some(p);
                            continue;
                        }
                    }
                }
                // Node is safe: parent can be released.
                drop(parent.take());
                if Node::is_leaf(&cur) {
                    let old = self.leaf_insert(&mut cur, key, value, overwrite)?;
                    cur.mark_dirty();
                    return Ok(old);
                }
                let child = self.pick_child(&cur, key);
                parent = Some(cur);
                cur_pid = child;
                cur = self.pool.write_extent(self.spec(cur_pid))?;
            }
        }
    }

    /// Worst-case room check used during the preemptive-split descent.
    fn node_is_safe(&self, buf: &[u8], probe: &[u8]) -> bool {
        if Node::is_leaf(buf) {
            self.leaf_fits(buf, probe, self.max_entry())
        } else {
            // Inner nodes store full separators (no prefix), so the largest
            // separator a child split can promote is max_entry bytes.
            Node::free_space_after_compaction(buf) >= self.max_entry() + SLOT + 8
        }
    }

    /// Exact room check for inserting `key` with a value of `vlen` bytes
    /// into a leaf, accounting for the prefix rebuild an out-of-prefix key
    /// forces.
    fn leaf_fits(&self, buf: &[u8], key: &[u8], entry_budget: usize) -> bool {
        let plen = Node::prefix_len(buf);
        let common = common_prefix_len(Node::prefix(buf), key);
        let growth = (plen - common) * Node::count(buf);
        Node::free_space_after_compaction(buf) >= entry_budget + SLOT + growth
    }

    /// Returns the previous value if the key already existed.
    fn leaf_insert(
        &self,
        buf: &mut [u8],
        key: &[u8],
        value: &[u8],
        overwrite: bool,
    ) -> Result<Option<Vec<u8>>> {
        // Shrink the prefix if the new key falls outside it.
        if self.cmp.bytewise() {
            let common = common_prefix_len(Node::prefix(buf), key);
            if common < Node::prefix_len(buf) {
                let new_prefix = key[..common].to_vec();
                Node::rebuild_with_prefix(buf, &new_prefix);
            }
        }
        let (i, exact) = self.lower_bound(buf, key);
        if exact {
            if !overwrite {
                return Err(Error::KeyExists);
            }
            let old = Node::value(buf, i).to_vec();
            Node::update_value(buf, i, value);
            return Ok(Some(old));
        }
        let plen = Node::prefix_len(buf);
        debug_assert!(!self.cmp.bytewise() || key.len() >= plen);
        let suffix = if self.cmp.bytewise() {
            &key[plen..]
        } else {
            key
        };
        Node::insert_at(buf, i, suffix, value);
        Ok(None)
    }

    // ----------------------------------------------------------- split ---

    /// Split `child` (held exclusively) under `parent` (held exclusively).
    /// The left half keeps the child's PID; the right half gets a new node.
    fn split_child(
        &self,
        parent: &mut XGuard<'_>,
        child_pid: Pid,
        mut child: XGuard<'_>,
    ) -> Result<()> {
        let right_spec = self.alloc.allocate_tail(self.node_pages)?;
        let mut right = self.pool.create_extent(right_spec)?;

        let sep = self.split_node(&mut child, &mut right, right_spec.start)?;

        // Hook the right node into the parent: the slot that pointed at
        // child now points at right (same separator range top), and a new
        // slot (sep -> child) covers the left half.
        let count = Node::count(parent);
        let mut at = count; // position of child's pointer
        for i in 0..count {
            if Node::child(parent, i) == child_pid {
                at = i;
                break;
            }
        }
        if at == count {
            debug_assert_eq!(Node::upper(parent), child_pid);
            Node::set_upper(parent, right_spec.start);
        } else {
            Node::update_value(parent, at, &right_spec.start.raw().to_le_bytes());
        }
        Node::insert_at(parent, at, &sep, &child_pid.raw().to_le_bytes());
        parent.mark_dirty();
        child.mark_dirty();
        right.mark_dirty();
        Ok(())
    }

    /// Split the root in place: move both halves to fresh nodes and turn
    /// the root into an inner node, keeping its PID stable.
    fn split_root(&self, root: &mut XGuard<'_>) -> Result<()> {
        let left_spec = self.alloc.allocate_tail(self.node_pages)?;
        let right_spec = self.alloc.allocate_tail(self.node_pages)?;
        let mut left = self.pool.create_extent(left_spec)?;
        let mut right = self.pool.create_extent(right_spec)?;

        // Move the root's content into `left`, then split left into right.
        left.copy_from_slice(root);
        let sep = self.split_node(&mut left, &mut right, right_spec.start)?;

        Node::init(root, KIND_INNER);
        Node::insert_at(root, 0, &sep, &left_spec.start.raw().to_le_bytes());
        Node::set_upper(root, right_spec.start);
        root.mark_dirty();
        left.mark_dirty();
        right.mark_dirty();
        Ok(())
    }

    /// Move the upper half of `left`'s entries into the empty node `right`
    /// (at `right_pid`); returns the separator (full) key: left covers keys
    /// `<= sep`, right covers `> sep`.
    fn split_node(&self, left: &mut [u8], right: &mut [u8], right_pid: Pid) -> Result<Vec<u8>> {
        let count = Node::count(left);
        if count < 2 {
            return Err(Error::Corruption(
                "cannot split node with fewer than 2 entries".into(),
            ));
        }
        let is_leaf = Node::is_leaf(left);
        let mid = count / 2;

        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..count)
            .map(|i| (Node::full_key(left, i), Node::value(left, i).to_vec()))
            .collect();

        let (sep, left_entries, right_entries, left_upper, right_upper) = if is_leaf {
            (
                entries[mid - 1].0.clone(),
                &entries[..mid],
                &entries[mid..],
                INVALID_PID,
                INVALID_PID,
            )
        } else {
            // Promote entries[mid].key; its child becomes left's upper.
            (
                entries[mid].0.clone(),
                &entries[..mid],
                &entries[mid + 1..],
                Pid::new(lobster_types::read_u64(&entries[mid].1)),
                Node::upper(left),
            )
        };

        let next = Node::next_leaf(left);
        let kind = if is_leaf { KIND_LEAF } else { KIND_INNER };

        Node::init(right, kind);
        self.fill_node(right, right_entries);
        Node::init(left, kind);
        self.fill_node(left, left_entries);

        if is_leaf {
            // Chain: left -> right -> old next.
            Node::set_next(left, right_pid);
            Node::set_next(right, next);
        } else {
            Node::set_upper(left, left_upper);
            Node::set_upper(right, right_upper);
        }
        Ok(sep)
    }

    /// Bulk-fill an empty node with sorted full-key entries, choosing the
    /// best shared prefix (leaves with byte-wise comparators only).
    fn fill_node(&self, buf: &mut [u8], entries: &[(Vec<u8>, Vec<u8>)]) {
        if entries.is_empty() {
            return;
        }
        let prefix_len = if Node::is_leaf(buf) && self.cmp.bytewise() {
            common_prefix_len(&entries[0].0, &entries[entries.len() - 1].0)
        } else {
            0
        };
        Node::set_prefix_of_empty(buf, &entries[0].0[..prefix_len]);
        for (i, (k, v)) in entries.iter().enumerate() {
            Node::insert_at(buf, i, &k[prefix_len..], v);
        }
    }

    // ---------------------------------------------------------- delete ---

    /// Remove `key`; returns its value if it existed. Nodes are not
    /// rebalanced on deletion (standard engine practice); emptied leaves
    /// are left in place and skipped by scans.
    pub fn remove(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut parent: Option<ShGuard<'_>> = None;
        let mut cur_pid = self.root;
        loop {
            // Peek the node type with a shared latch; re-acquire the leaf
            // exclusively (the parent guard pins the path).
            let g = self.pool.read_extent(self.spec(cur_pid))?;
            self.bump_node_access();
            if Node::is_leaf(&g) {
                drop(g);
                let mut leaf = self.pool.write_extent(self.spec(cur_pid))?;
                let (i, exact) = self.lower_bound(&leaf, key);
                if !exact {
                    return Ok(None);
                }
                let old = Node::value(&leaf, i).to_vec();
                Node::remove_at(&mut leaf, i);
                leaf.mark_dirty();
                drop(parent);
                return Ok(Some(old));
            }
            let child = self.pick_child(&g, key);
            parent = Some(g);
            cur_pid = child;
        }
    }

    // ----------------------------------------------------------- scans ---

    /// Visit entries with keys `>= start` in order until `f` returns
    /// `false`.
    pub fn scan_from(&self, start: &[u8], mut f: impl FnMut(&[u8], &[u8]) -> bool) -> Result<()> {
        let mut guard = self.pool.read_extent(self.spec(self.root))?;
        loop {
            self.bump_node_access();
            if Node::is_leaf(&guard) {
                break;
            }
            let child = self.pick_child(&guard, start);
            guard = self.pool.read_extent(self.spec(child))?;
        }
        let (mut i, _) = self.lower_bound(&guard, start);
        loop {
            let count = Node::count(&guard);
            while i < count {
                let key = Node::full_key(&guard, i);
                if !f(&key, Node::value(&guard, i)) {
                    return Ok(());
                }
                i += 1;
            }
            let next = Node::next_leaf(&guard);
            if !next.is_valid() {
                return Ok(());
            }
            guard = self.pool.read_extent(self.spec(next))?;
            self.bump_node_access();
            i = 0;
        }
    }

    /// Visit every entry in key order. Unlike [`BTree::scan_from`], this
    /// descends to the leftmost leaf without invoking the comparator, so it
    /// works with comparators that require well-formed keys.
    pub fn for_each(&self, mut f: impl FnMut(&[u8], &[u8]) -> bool) -> Result<()> {
        let mut guard = self.pool.read_extent(self.spec(self.root))?;
        loop {
            self.bump_node_access();
            if Node::is_leaf(&guard) {
                break;
            }
            let child = if Node::count(&guard) > 0 {
                Node::child(&guard, 0)
            } else {
                Node::upper(&guard)
            };
            guard = self.pool.read_extent(self.spec(child))?;
        }
        let mut i = 0;
        loop {
            let count = Node::count(&guard);
            while i < count {
                let key = Node::full_key(&guard, i);
                if !f(&key, Node::value(&guard, i)) {
                    return Ok(());
                }
                i += 1;
            }
            let next = Node::next_leaf(&guard);
            if !next.is_valid() {
                return Ok(());
            }
            guard = self.pool.read_extent(self.spec(next))?;
            self.bump_node_access();
            i = 0;
        }
    }

    // ------------------------------------------------------ statistics ---

    /// Full-traversal statistics.
    pub fn stats(&self) -> Result<TreeStats> {
        let mut s = TreeStats::default();
        self.visit(self.root, 1, &mut |buf, depth| {
            s.nodes += 1;
            s.height = s.height.max(depth);
            s.used_bytes += Node::used_bytes(buf) as u64;
            s.capacity_bytes += buf.len() as u64;
            if Node::is_leaf(buf) {
                s.leaves += 1;
                s.entries += Node::count(buf) as u64;
            }
        })?;
        Ok(s)
    }

    /// Collect the extent of every node (for allocator rebuild after
    /// recovery).
    pub fn collect_extents(&self) -> Result<Vec<ExtentSpec>> {
        let mut pids = Vec::new();
        self.collect_rec(self.root, &mut pids)?;
        Ok(pids.into_iter().map(|p| self.spec(p)).collect())
    }

    fn collect_rec(&self, pid: Pid, out: &mut Vec<Pid>) -> Result<()> {
        out.push(pid);
        let children = {
            let g = self.pool.read_extent(self.spec(pid))?;
            if Node::is_leaf(&g) {
                Vec::new()
            } else {
                let mut c: Vec<Pid> = (0..Node::count(&g)).map(|i| Node::child(&g, i)).collect();
                c.push(Node::upper(&g));
                c
            }
        };
        for child in children {
            self.collect_rec(child, out)?;
        }
        Ok(())
    }

    fn visit(&self, pid: Pid, depth: u32, f: &mut impl FnMut(&[u8], u32)) -> Result<()> {
        let children = {
            let g = self.pool.read_extent(self.spec(pid))?;
            f(&g, depth);
            if Node::is_leaf(&g) {
                Vec::new()
            } else {
                let mut c: Vec<Pid> = (0..Node::count(&g)).map(|i| Node::child(&g, i)).collect();
                c.push(Node::upper(&g));
                c
            }
        };
        for child in children {
            self.visit(child, depth + 1, f)?;
        }
        Ok(())
    }
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}
