//! A minimal, line-aware Rust lexer.
//!
//! The build environment is fully offline (no registry), so the lint
//! engine cannot lean on `syn`/`proc-macro2`; every rule in this crate
//! works off this hand-rolled token stream instead. The lexer handles
//! exactly the surface the rules need and nothing more:
//!
//! * identifiers (with raw-ident `r#` handling) and punctuation, each
//!   tagged with a 1-based line and column;
//! * string/char/byte/raw-string literals skipped as opaque `Lit`
//!   tokens, so a `"std::sync"` inside a string never trips a rule;
//! * line and block comments (nesting included) collected out-of-band
//!   with their line spans, which is how `// ordering:` adjacency and
//!   the `// lint-allow(rule): reason` escape hatch are resolved;
//! * lifetimes disambiguated from char literals.
//!
//! It does **not** build an AST. Rules that need structure (function
//! extents, guard scopes) re-walk the token stream tracking brace depth,
//! which is exact for token-level properties because the lexer has
//! already removed every brace that lives inside a literal or comment.

/// Token kind. Literal payloads are deliberately dropped — no rule
/// inspects literal contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword; the text is in [`Tok::text`].
    Ident,
    /// A single punctuation character (`::` arrives as two adjacent `:`).
    Punct(char),
    /// String/char/byte/numeric literal, contents opaque.
    Lit,
    /// A lifetime such as `'a` (kept distinct so `'a` never looks like
    /// an unterminated char literal).
    Lifetime,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Identifier text (empty for non-ident tokens).
    pub text: String,
    pub line: u32,
    pub col: u32,
    /// Byte offset of the first character, used for adjacency checks
    /// (e.g. recognising `::` as two touching `:` tokens).
    pub off: usize,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment with its line span (block comments may span many lines).
#[derive(Debug, Clone)]
pub struct Comment {
    pub line_start: u32,
    pub line_end: u32,
    pub text: String,
}

/// Lexer output: the token stream plus the out-of-band comment list.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// True if `pred` matches any comment that is *adjacent* to `line`:
    /// either on the line itself (trailing comment) or ending on the
    /// line directly above (annotation-on-own-line convention).
    pub fn adjacent_comment(&self, line: u32, pred: impl Fn(&str) -> bool) -> bool {
        self.comments.iter().any(|c| {
            (c.line_end + 1 == line || (c.line_start <= line && line <= c.line_end))
                && pred(&c.text)
        })
    }

    /// True if `pred` matches any comment within the first `n` lines
    /// (file-level escape hatch).
    pub fn head_comment(&self, n: u32, pred: impl Fn(&str) -> bool) -> bool {
        self.comments
            .iter()
            .any(|c| c.line_start <= n && pred(&c.text))
    }
}

/// Lex `src`. Never fails: malformed input degrades to best-effort
/// tokens, which is the right trade for a lint that must not crash on
/// the one file somebody is mid-edit on.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if b[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i] as char;
        let (tl, tc, to) = (line, col, i);

        // Whitespace.
        if c.is_ascii_whitespace() {
            bump!();
            continue;
        }

        // Line comment.
        if c == '/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                bump!();
            }
            out.comments.push(Comment {
                line_start: tl,
                line_end: tl,
                text: src[start..i].to_string(),
            });
            continue;
        }

        // Block comment (nesting).
        if c == '/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    bump!();
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!();
                }
            }
            out.comments.push(Comment {
                line_start: tl,
                line_end: line,
                text: src[start..i.min(src.len())].to_string(),
            });
            continue;
        }

        // Raw strings r"..." / r#"..."# (and br variants). Must be
        // checked before identifiers so `r#"` is not read as raw ident.
        if (c == 'r' || c == 'b') && is_raw_string_start(b, i) {
            let mut j = i;
            if b[j] == b'b' {
                j += 1;
            }
            j += 1; // past 'r'
            let mut hashes = 0usize;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            // j at opening quote
            while i < j {
                bump!();
            }
            bump!(); // opening quote
            'raw: while i < b.len() {
                if b[i] == b'"' {
                    let mut k = i + 1;
                    let mut h = 0usize;
                    while k < b.len() && b[k] == b'#' && h < hashes {
                        h += 1;
                        k += 1;
                    }
                    if h == hashes {
                        while i < k {
                            bump!();
                        }
                        break 'raw;
                    }
                }
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Lit,
                text: String::new(),
                line: tl,
                col: tc,
                off: to,
            });
            continue;
        }

        // Identifier / keyword / raw ident.
        if c == '_' || c.is_ascii_alphabetic() {
            let start = i;
            // raw ident r#ident
            if (c == 'r' || c == 'b') && i + 1 < b.len() && b[i + 1] == b'#' {
                // r# raw ident (b# is not a thing, but be permissive)
                bump!();
                bump!();
            }
            while i < b.len() && (b[i] == b'_' || (b[i] as char).is_ascii_alphanumeric()) {
                bump!();
            }
            let text = src[start..i].trim_start_matches("r#").to_string();
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line: tl,
                col: tc,
                off: to,
            });
            continue;
        }

        // Numeric literal (digits; suffix consumed as part of it).
        if c.is_ascii_digit() {
            while i < b.len()
                && (b[i] == b'_'
                    || b[i] == b'.' && i + 1 < b.len() && (b[i + 1] as char).is_ascii_digit()
                    || (b[i] as char).is_ascii_alphanumeric())
            {
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Lit,
                text: String::new(),
                line: tl,
                col: tc,
                off: to,
            });
            continue;
        }

        // String literal (incl. b"...").
        if c == '"' {
            bump!();
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    bump!();
                    bump!();
                } else if b[i] == b'"' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Lit,
                text: String::new(),
                line: tl,
                col: tc,
                off: to,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if is_char_literal(b, i) {
                bump!(); // opening quote
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        bump!();
                        bump!();
                    } else if b[i] == b'\'' {
                        bump!();
                        break;
                    } else {
                        bump!();
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: String::new(),
                    line: tl,
                    col: tc,
                    off: to,
                });
            } else {
                // Lifetime: ' followed by ident chars.
                bump!();
                while i < b.len() && (b[i] == b'_' || (b[i] as char).is_ascii_alphanumeric()) {
                    bump!();
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: String::new(),
                    line: tl,
                    col: tc,
                    off: to,
                });
            }
            continue;
        }

        // Everything else: single punctuation char.
        out.toks.push(Tok {
            kind: TokKind::Punct(c),
            text: String::new(),
            line: tl,
            col: tc,
            off: to,
        });
        bump!();
    }

    // Merge runs of `//` comments on consecutive lines into one block,
    // so a multi-line justification counts as a single comment for
    // adjacency checks (only its first line needs the keyword).
    let mut merged: Vec<Comment> = Vec::with_capacity(out.comments.len());
    for c in out.comments.drain(..) {
        match merged.last_mut() {
            Some(p)
                if p.text.starts_with("//")
                    && c.text.starts_with("//")
                    && c.line_start == p.line_end + 1 =>
            {
                p.line_end = c.line_end;
                p.text.push('\n');
                p.text.push_str(&c.text);
            }
            _ => merged.push(c),
        }
    }
    out.comments = merged;

    out
}

/// `r"`, `r#"`, `br"`, `br#"` ...
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j >= b.len() || b[j] != b'r' {
            return false;
        }
    }
    if j >= b.len() || b[j] != b'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Distinguish `'x'` / `'\n'` (char literal) from `'a` (lifetime).
fn is_char_literal(b: &[u8], i: usize) -> bool {
    // i points at the opening quote.
    if i + 1 >= b.len() {
        return false;
    }
    if b[i + 1] == b'\\' {
        return true;
    }
    // 'c' where the char after next is a closing quote.
    if i + 2 < b.len() && b[i + 2] == b'\'' {
        return true;
    }
    false
}

/// Check whether the two tokens at `idx` and `idx+1` form a `::` path
/// separator (adjacent colon puncts).
pub fn is_path_sep(toks: &[Tok], idx: usize) -> bool {
    idx + 1 < toks.len()
        && toks[idx].is_punct(':')
        && toks[idx + 1].is_punct(':')
        && toks[idx + 1].off == toks[idx].off + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let lx = lex("let a = \"std::sync\"; // use parking_lot\n/* Ordering::Relaxed */ let b;");
        assert!(lx.toks.iter().all(|t| t.text != "parking_lot"));
        assert!(lx.toks.iter().all(|t| t.text != "Ordering"));
        assert_eq!(lx.comments.len(), 2);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let lx = lex("fn f<'a>(x: &'a str) { let s = r#\"un\"closed::Ordering\"#; let c = 'x'; }");
        assert!(lx.toks.iter().all(|t| t.text != "Ordering"));
        assert!(lx.toks.iter().any(|t| t.kind == TokKind::Lifetime));
    }

    #[test]
    fn path_sep_detection() {
        let lx = lex("std::sync::Arc");
        let idx: Vec<usize> = (0..lx.toks.len())
            .filter(|&k| is_path_sep(&lx.toks, k))
            .collect();
        assert_eq!(idx.len(), 2);
        assert!(lx.toks[0].is_ident("std"));
    }

    #[test]
    fn adjacency() {
        let lx = lex("// ordering: counter\nx.fetch_add(1, Ordering::Relaxed);\n");
        assert!(lx.adjacent_comment(2, |t| t.contains("ordering:")));
        assert!(!lx.adjacent_comment(1, |t| t.contains("nope")));
    }

    #[test]
    fn multi_line_comment_blocks_merge() {
        let lx = lex(
            "// ordering: Relaxed is fine here because\n// nothing synchronizes on it\nx.load(Ordering::Relaxed);\n",
        );
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.adjacent_comment(3, |t| t.contains("ordering:")));
    }

    #[test]
    fn nested_block_comment() {
        let lx = lex("/* outer /* inner */ still */ fn f() {}");
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.toks.iter().any(|t| t.is_ident("fn")));
    }
}
