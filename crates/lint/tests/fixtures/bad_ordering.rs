//! Known-bad fixture for **ordering-audit**: one naked non-SeqCst
//! ordering, one properly justified site that must stay silent.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed) + 1
}

pub fn annotated(c: &AtomicU64) -> u64 {
    // ordering: counter; nothing synchronizes on this value
    c.load(Ordering::Relaxed)
}
