//! **ordering-audit**: every non-SeqCst atomic memory ordering
//! (`Relaxed`, `Acquire`, `Release`, `AcqRel`) must carry an adjacent
//! `// ordering:` justification — trailing on the same line or on the
//! line directly above. One annotation covers every ordering token on
//! its line (a `compare_exchange` names two).
//!
//! The point is not ceremony: a relaxed load is a claim that no other
//! memory depends on observing it, and that claim rots silently when
//! code moves. The comment pins the claim to the site so review —
//! human or TSan-triage — has something to falsify.

use super::{path_matches, push};
use crate::config::LintConfig;
use crate::lexer::is_path_sep;
use crate::{Diagnostic, SourceFile};

const RULE: &str = "ordering-audit";

const NON_SEQCST: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel"];

pub fn check(f: &SourceFile, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    if cfg.ordering_exclude.iter().any(|p| path_matches(&f.rel, p)) {
        return;
    }
    let toks = &f.lx.toks;
    let mut last_line = 0u32;
    for i in 2..toks.len() {
        let t = &toks[i];
        if !NON_SEQCST.iter().any(|v| t.is_ident(v)) {
            continue;
        }
        // Require a `<...Ordering>::Variant` path so `cmp::Ordering`
        // variants (`Less`, …) or a stray ident named `Relaxed` can't
        // collide: the qualifier must *end with* `Ordering` (covers
        // aliases like `AtomicOrdering`).
        if !is_path_sep(toks, i - 2) {
            continue;
        }
        let Some(q) = toks.get(i.wrapping_sub(3)) else {
            continue;
        };
        if !q.text.ends_with("Ordering") {
            continue;
        }
        if f.in_test_mod(t.line) || t.line == last_line {
            continue;
        }
        last_line = t.line;
        if f.lx.adjacent_comment(t.line, |c| c.contains("ordering:")) {
            continue;
        }
        push(
            out,
            f,
            cfg,
            RULE,
            t.line,
            t.col,
            format!(
                "non-SeqCst `Ordering::{}` without a `// ordering:` justification",
                t.text
            ),
            "state what this ordering may and may not observe, e.g. \
             `// ordering: counter; nothing synchronizes on this value`"
                .into(),
        );
    }
}
