//! Wire protocol for `lobster-serve`: length-prefixed binary frames over
//! TCP, little-endian throughout.
//!
//! # Request frame
//!
//! ```text
//! u32 body_len | body
//! body = u8 opcode | payload
//!   PING      (1): (empty)
//!   PUT       (2): u16 klen | key | u32 vlen | value
//!   GET       (3): u16 klen | key
//!   GET_RANGE (4): u16 klen | key | u64 offset | u64 len
//!   STAT      (5): u16 klen | key
//! ```
//!
//! # Response frame
//!
//! ```text
//! u8 status | u64 body_len | body
//!   OK + GET/GET_RANGE: body = payload bytes (streamed in chunks)
//!   OK + STAT:          body = u64 size | [u8; 32] sha256
//!   OK + PING/PUT:      body empty
//!   any error status:   body empty
//! ```
//!
//! A GET/GET_RANGE response's `body_len` is computed from the Blob State
//! *before* streaming, so clients always know how many payload bytes
//! follow; a mid-stream server/client failure surfaces as a short body
//! (connection close), never a corrupt frame. Error statuses are sent as
//! complete frames and — except for [`Status::TooLarge`] on an oversized
//! *request* frame, where the stream can no longer be re-synchronized —
//! leave the connection open for the next request.

use lobster_types::{Error, Result};
use std::io::{Read, Write};

/// Request opcodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    Ping = 1,
    Put = 2,
    Get = 3,
    GetRange = 4,
    Stat = 5,
}

impl Opcode {
    pub fn from_u8(b: u8) -> Option<Opcode> {
        match b {
            1 => Some(Opcode::Ping),
            2 => Some(Opcode::Put),
            3 => Some(Opcode::Get),
            4 => Some(Opcode::GetRange),
            5 => Some(Opcode::Stat),
            _ => None,
        }
    }
}

/// Response status codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    Ok = 0,
    NotFound = 1,
    /// Request frame or value exceeds the server's configured maximum.
    TooLarge = 2,
    /// Malformed request body (short fields, trailing garbage).
    BadFrame = 3,
    UnknownOpcode = 4,
    /// Shed by admission control or the pin-gate; retry later.
    Busy = 5,
    /// Engine-side failure (I/O error, conflict retries exhausted).
    ServerErr = 6,
    /// Server is draining for shutdown.
    ShuttingDown = 7,
}

impl Status {
    pub fn from_u8(b: u8) -> Option<Status> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::NotFound),
            2 => Some(Status::TooLarge),
            3 => Some(Status::BadFrame),
            4 => Some(Status::UnknownOpcode),
            5 => Some(Status::Busy),
            6 => Some(Status::ServerErr),
            7 => Some(Status::ShuttingDown),
            _ => None,
        }
    }
}

/// Default cap on request frame bodies (opcode + payload). PUT values must
/// fit in a frame; GET responses stream and are not capped by this.
pub const DEFAULT_MAX_FRAME: u32 = 64 << 20;

/// Parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    Ping,
    Put { key: Vec<u8>, value: Vec<u8> },
    Get { key: Vec<u8> },
    GetRange { key: Vec<u8>, offset: u64, len: u64 },
    Stat { key: Vec<u8> },
}

/// Encode a request into a length-prefixed frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut body = Vec::new();
    match req {
        Request::Ping => body.push(Opcode::Ping as u8),
        Request::Put { key, value } => {
            body.push(Opcode::Put as u8);
            body.extend_from_slice(&(key.len() as u16).to_le_bytes());
            body.extend_from_slice(key);
            body.extend_from_slice(&(value.len() as u32).to_le_bytes());
            body.extend_from_slice(value);
        }
        Request::Get { key } => {
            body.push(Opcode::Get as u8);
            body.extend_from_slice(&(key.len() as u16).to_le_bytes());
            body.extend_from_slice(key);
        }
        Request::GetRange { key, offset, len } => {
            body.push(Opcode::GetRange as u8);
            body.extend_from_slice(&(key.len() as u16).to_le_bytes());
            body.extend_from_slice(key);
            body.extend_from_slice(&offset.to_le_bytes());
            body.extend_from_slice(&len.to_le_bytes());
        }
        Request::Stat { key } => {
            body.push(Opcode::Stat as u8);
            body.extend_from_slice(&(key.len() as u16).to_le_bytes());
            body.extend_from_slice(key);
        }
    }
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Outcome of parsing one complete request body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Parsed {
    Req(Request),
    /// Opcode byte not in the protocol — answer [`Status::UnknownOpcode`].
    UnknownOpcode,
    /// Structurally invalid body — answer [`Status::BadFrame`].
    Bad,
}

/// Parse a request body (everything after the `u32` length prefix).
/// Never panics on malformed input — the torture fuzz loop feeds this
/// arbitrary bytes.
pub fn parse_request(body: &[u8]) -> Parsed {
    fn take<'a>(b: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
        if b.len() < n {
            return None;
        }
        let (head, tail) = b.split_at(n);
        *b = tail;
        Some(head)
    }
    fn take_arr<const N: usize>(b: &mut &[u8]) -> Option<[u8; N]> {
        take(b, N).and_then(|s| s.try_into().ok())
    }
    fn take_u16(b: &mut &[u8]) -> Option<u16> {
        take_arr::<2>(b).map(u16::from_le_bytes)
    }
    fn take_u32(b: &mut &[u8]) -> Option<u32> {
        take_arr::<4>(b).map(u32::from_le_bytes)
    }
    fn take_u64(b: &mut &[u8]) -> Option<u64> {
        take_arr::<8>(b).map(u64::from_le_bytes)
    }

    let mut b = body;
    let Some(&op) = take(&mut b, 1).and_then(<[u8]>::first) else {
        return Parsed::Bad;
    };
    let Some(op) = Opcode::from_u8(op) else {
        return Parsed::UnknownOpcode;
    };
    let parsed = (|| -> Option<Request> {
        let req = match op {
            Opcode::Ping => Request::Ping,
            Opcode::Put => {
                let klen = take_u16(&mut b)? as usize;
                let key = take(&mut b, klen)?.to_vec();
                let vlen = take_u32(&mut b)? as usize;
                let value = take(&mut b, vlen)?.to_vec();
                Request::Put { key, value }
            }
            Opcode::Get => {
                let klen = take_u16(&mut b)? as usize;
                Request::Get {
                    key: take(&mut b, klen)?.to_vec(),
                }
            }
            Opcode::GetRange => {
                let klen = take_u16(&mut b)? as usize;
                let key = take(&mut b, klen)?.to_vec();
                let offset = take_u64(&mut b)?;
                let len = take_u64(&mut b)?;
                Request::GetRange { key, offset, len }
            }
            Opcode::Stat => {
                let klen = take_u16(&mut b)? as usize;
                Request::Stat {
                    key: take(&mut b, klen)?.to_vec(),
                }
            }
        };
        // Trailing garbage after a well-formed request is a framing bug.
        b.is_empty().then_some(req)
    })();
    match parsed {
        Some(req) => Parsed::Req(req),
        None => Parsed::Bad,
    }
}

/// Write a response header (`status | u64 body_len`). Payload bytes, if
/// any, follow via plain `write_all` calls.
pub fn write_response_header(w: &mut impl Write, status: Status, body_len: u64) -> Result<()> {
    let mut hdr = [0u8; 9];
    let [status_byte, len_bytes @ ..] = &mut hdr;
    *status_byte = status as u8;
    *len_bytes = body_len.to_le_bytes();
    w.write_all(&hdr).map_err(Error::Io)
}

/// Blob metadata returned by STAT.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatReply {
    pub size: u64,
    pub sha256: [u8; 32],
}

/// One parsed response: status plus body (payload for GET, 40-byte
/// metadata for STAT, empty otherwise).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    pub status: Status,
    pub body: Vec<u8>,
}

impl Response {
    pub fn stat(&self) -> Option<StatReply> {
        if self.status != Status::Ok || self.body.len() != 40 {
            return None;
        }
        let size = u64::from_le_bytes(self.body.get(..8)?.try_into().ok()?);
        let sha256: [u8; 32] = self.body.get(8..40)?.try_into().ok()?;
        Some(StatReply { size, sha256 })
    }
}

/// Read one full response (header + body) from `r`.
pub fn read_response(r: &mut impl Read) -> Result<Response> {
    let mut hdr = [0u8; 9];
    r.read_exact(&mut hdr).map_err(Error::Io)?;
    let [status_byte, len_bytes @ ..] = hdr;
    let Some(status) = Status::from_u8(status_byte) else {
        return Err(Error::Corruption(format!(
            "unknown response status {status_byte}"
        )));
    };
    let body_len = u64::from_le_bytes(len_bytes);
    let mut body = vec![0u8; body_len as usize];
    r.read_exact(&mut body).map_err(Error::Io)?;
    Ok(Response { status, body })
}

/// Blocking protocol client over one TCP connection. Used by the load
/// generator, the smoke tests, and as the reference implementation of the
/// wire format.
pub struct Client {
    stream: std::net::TcpStream,
}

impl Client {
    pub fn connect(addr: &str) -> Result<Client> {
        let stream = std::net::TcpStream::connect(addr).map_err(Error::Io)?;
        stream.set_nodelay(true).map_err(Error::Io)?;
        Ok(Client { stream })
    }

    pub fn from_stream(stream: std::net::TcpStream) -> Client {
        Client { stream }
    }

    pub fn stream(&self) -> &std::net::TcpStream {
        &self.stream
    }

    fn call(&mut self, req: &Request) -> Result<Response> {
        self.stream
            .write_all(&encode_request(req))
            .map_err(Error::Io)?;
        read_response(&mut self.stream)
    }

    pub fn ping(&mut self) -> Result<Status> {
        Ok(self.call(&Request::Ping)?.status)
    }

    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<Status> {
        Ok(self
            .call(&Request::Put {
                key: key.to_vec(),
                value: value.to_vec(),
            })?
            .status)
    }

    pub fn get(&mut self, key: &[u8]) -> Result<Response> {
        self.call(&Request::Get { key: key.to_vec() })
    }

    pub fn get_range(&mut self, key: &[u8], offset: u64, len: u64) -> Result<Response> {
        self.call(&Request::GetRange {
            key: key.to_vec(),
            offset,
            len,
        })
    }

    pub fn stat(&mut self, key: &[u8]) -> Result<Response> {
        self.call(&Request::Stat { key: key.to_vec() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Ping,
            Request::Put {
                key: b"k".to_vec(),
                value: vec![7; 1000],
            },
            Request::Get {
                key: b"xy".to_vec(),
            },
            Request::GetRange {
                key: b"r".to_vec(),
                offset: 123,
                len: 456,
            },
            Request::Stat { key: vec![] },
        ] {
            let frame = encode_request(&req);
            let body_len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
            assert_eq!(body_len, frame.len() - 4);
            assert_eq!(parse_request(&frame[4..]), Parsed::Req(req));
        }
    }

    #[test]
    fn malformed_bodies_never_panic() {
        assert_eq!(parse_request(&[]), Parsed::Bad);
        assert_eq!(parse_request(&[99]), Parsed::UnknownOpcode);
        assert_eq!(parse_request(&[0]), Parsed::UnknownOpcode);
        // Truncated PUT: klen says 10 but only 2 key bytes follow.
        assert_eq!(parse_request(&[2, 10, 0, b'a', b'b']), Parsed::Bad);
        // Trailing garbage after a valid GET.
        assert_eq!(parse_request(&[3, 1, 0, b'k', 0xFF]), Parsed::Bad);
        // vlen pointing past the end.
        assert_eq!(
            parse_request(&[2, 1, 0, b'k', 0xFF, 0xFF, 0xFF, 0x7F]),
            Parsed::Bad
        );
    }
}
