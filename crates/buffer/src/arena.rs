//! The frame arena: the physical memory backing all buffer frames, plus the
//! *aliasing region* used for virtual-memory aliasing (§IV-B).
//!
//! On Linux the arena is a `memfd` mapped once (the "physical" memory);
//! aliasing maps frame ranges of that memfd a second time, contiguously,
//! into a reserved region — a faithful userspace substitute for exmap's page
//! table manipulation (DESIGN.md substitution 2). On failure (or other
//! platforms) a plain heap arena is used and aliasing degrades to a gather
//! copy, which is exactly the malloc+memcpy path the paper's hash-table
//! baseline takes.

use lobster_types::{Error, Result};

/// Alignment/granularity of aliasing operations (the OS page size).
pub const OS_PAGE: usize = 4096;

enum Backing {
    Mmap {
        fd: libc::c_int,
        frames: *mut u8,
        alias: *mut u8,
    },
    Heap {
        frames: Box<[u8]>,
    },
}

// SAFETY: the raw pointers refer to process-global mappings that live as long
// as the `Backing`; synchronization of the *contents* is the buffer pool's
// latching protocol, so moving the pointers across threads is sound.
unsafe impl Send for Backing {}
// SAFETY: shared access to the mapped bytes is mediated entirely by the
// pool's versioned latches; the `Backing` itself holds no interior state
// that is mutated without synchronization.
unsafe impl Sync for Backing {}

/// Frame memory plus an optional aliasing region.
pub struct Arena {
    backing: Backing,
    frame_bytes: usize,
    alias_bytes: usize,
}

impl Arena {
    /// Allocate an arena of `frame_bytes` of frame memory and reserve
    /// `alias_bytes` of aliasing address space. Both are rounded up to the
    /// OS page size.
    pub fn new(frame_bytes: usize, alias_bytes: usize) -> Self {
        let frame_bytes = frame_bytes.div_ceil(OS_PAGE) * OS_PAGE;
        let alias_bytes = alias_bytes.div_ceil(OS_PAGE) * OS_PAGE;
        // Miri cannot execute the memfd/mmap foreign calls; use the heap
        // backing so the arena/alias tests run under the interpreter.
        #[cfg(miri)]
        return Arena {
            backing: Backing::Heap {
                frames: vec![0u8; frame_bytes].into_boxed_slice(),
            },
            frame_bytes,
            alias_bytes,
        };
        #[cfg(not(miri))]
        match Self::try_mmap(frame_bytes, alias_bytes) {
            Ok(backing) => Arena {
                backing,
                frame_bytes,
                alias_bytes,
            },
            Err(_) => Arena {
                backing: Backing::Heap {
                    frames: vec![0u8; frame_bytes].into_boxed_slice(),
                },
                frame_bytes,
                alias_bytes,
            },
        }
    }

    fn try_mmap(frame_bytes: usize, alias_bytes: usize) -> Result<Backing> {
        // SAFETY: raw libc calls. memfd_create/ftruncate/mmap take only
        // values we own (a NUL-terminated literal name, sizes rounded to the
        // OS page); every error path unwinds the fd/mappings created so far,
        // so no resource escapes half-initialized.
        unsafe {
            let name = b"lobster-arena\0";
            let fd = libc::syscall(
                libc::SYS_memfd_create,
                name.as_ptr() as *const libc::c_char,
                0 as libc::c_uint,
            ) as libc::c_int;
            if fd < 0 {
                return Err(Error::Io(std::io::Error::last_os_error()));
            }
            if libc::ftruncate(fd, frame_bytes as libc::off_t) != 0 {
                let e = std::io::Error::last_os_error();
                libc::close(fd);
                return Err(Error::Io(e));
            }
            let frames = libc::mmap(
                std::ptr::null_mut(),
                frame_bytes,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED,
                fd,
                0,
            );
            if frames == libc::MAP_FAILED {
                let e = std::io::Error::last_os_error();
                libc::close(fd);
                return Err(Error::Io(e));
            }
            let alias = if alias_bytes > 0 {
                let p = libc::mmap(
                    std::ptr::null_mut(),
                    alias_bytes,
                    libc::PROT_NONE,
                    libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
                    -1,
                    0,
                );
                if p == libc::MAP_FAILED {
                    let e = std::io::Error::last_os_error();
                    libc::munmap(frames, frame_bytes);
                    libc::close(fd);
                    return Err(Error::Io(e));
                }
                p as *mut u8
            } else {
                std::ptr::null_mut()
            };
            Ok(Backing::Mmap {
                fd,
                frames: frames as *mut u8,
                alias,
            })
        }
    }

    /// Whether zero-copy aliasing is available.
    pub fn supports_alias(&self) -> bool {
        matches!(self.backing, Backing::Mmap { .. }) && self.alias_bytes > 0
    }

    pub fn frame_bytes(&self) -> usize {
        self.frame_bytes
    }

    pub fn alias_bytes(&self) -> usize {
        self.alias_bytes
    }

    fn frames_ptr(&self) -> *mut u8 {
        match &self.backing {
            Backing::Mmap { frames, .. } => *frames,
            Backing::Heap { frames } => frames.as_ptr() as *mut u8,
        }
    }

    /// Raw pointer to a frame byte range.
    ///
    /// # Safety
    /// `off + len` must lie within the arena, and the caller must hold the
    /// pool latch that grants it access to this range.
    pub unsafe fn frame_ptr(&self, off: usize, len: usize) -> *mut u8 {
        debug_assert!(off + len <= self.frame_bytes);
        self.frames_ptr().add(off)
    }

    /// Mutable view of a frame range.
    ///
    /// # Safety
    /// Same contract as [`Arena::frame_ptr`], and the caller must hold an
    /// exclusive latch for mutation (shared for read-only use).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn frame_slice_mut(&self, off: usize, len: usize) -> &mut [u8] {
        std::slice::from_raw_parts_mut(self.frame_ptr(off, len), len)
    }

    /// Map `len` bytes of frame memory starting at `src_off` into the
    /// aliasing region at `dst_off` (both OS-page aligned). Zero-copy: the
    /// same physical pages become visible at the alias address.
    ///
    /// # Safety
    /// The caller must own `dst_off..dst_off+len` of the aliasing region
    /// (via the aliasing-area reservation protocol) and hold latches on the
    /// frames being aliased.
    pub unsafe fn alias_map(&self, dst_off: usize, src_off: usize, len: usize) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        debug_assert_eq!(dst_off % OS_PAGE, 0);
        debug_assert_eq!(src_off % OS_PAGE, 0);
        debug_assert_eq!(len % OS_PAGE, 0);
        debug_assert!(dst_off + len <= self.alias_bytes);
        debug_assert!(src_off + len <= self.frame_bytes);
        match &self.backing {
            Backing::Mmap { fd, alias, .. } => {
                let p = libc::mmap(
                    alias.add(dst_off) as *mut libc::c_void,
                    len,
                    libc::PROT_READ,
                    libc::MAP_SHARED | libc::MAP_FIXED,
                    *fd,
                    src_off as libc::off_t,
                );
                if p == libc::MAP_FAILED {
                    return Err(Error::Io(std::io::Error::last_os_error()));
                }
                Ok(())
            }
            Backing::Heap { .. } => Err(Error::Unsupported("aliasing without mmap arena")),
        }
    }

    /// Invalidate an aliasing mapping (the paper's TLB-shootdown moment):
    /// the range reverts to inaccessible.
    ///
    /// # Safety
    /// Caller owns the range per the reservation protocol.
    pub unsafe fn alias_unmap(&self, dst_off: usize, len: usize) {
        if len == 0 {
            return;
        }
        debug_assert_eq!(dst_off % OS_PAGE, 0);
        debug_assert_eq!(len % OS_PAGE, 0);
        if let Backing::Mmap { alias, .. } = &self.backing {
            // Remap as PROT_NONE anonymous memory rather than munmap so the
            // reserved region stays contiguous.
            let p = libc::mmap(
                alias.add(dst_off) as *mut libc::c_void,
                len,
                libc::PROT_NONE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_FIXED,
                -1,
                0,
            );
            debug_assert!(p != libc::MAP_FAILED);
        }
    }

    /// Pointer to the start of the aliasing region.
    pub fn alias_base(&self) -> *const u8 {
        match &self.backing {
            Backing::Mmap { alias, .. } => *alias,
            Backing::Heap { .. } => std::ptr::null(),
        }
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        if let Backing::Mmap { fd, frames, alias } = &self.backing {
            // SAFETY: `frames`/`alias` are the exact pointers and lengths
            // returned by mmap in `try_mmap`, unmapped exactly once here
            // (Drop runs once); the fd is closed last.
            unsafe {
                libc::munmap(*frames as *mut libc::c_void, self.frame_bytes);
                if !alias.is_null() {
                    libc::munmap(*alias as *mut libc::c_void, self.alias_bytes);
                }
                libc::close(*fd);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_memory_read_write() {
        let arena = Arena::new(OS_PAGE * 4, 0);
        // SAFETY: single-threaded test; the two slices cover the same range
        // but are used sequentially, never held concurrently as &mut.
        unsafe {
            let s = arena.frame_slice_mut(OS_PAGE, OS_PAGE);
            s.fill(0xAB);
            let s2 = arena.frame_slice_mut(OS_PAGE, OS_PAGE);
            assert!(s2.iter().all(|&b| b == 0xAB));
        }
    }

    #[test]
    fn aliasing_gives_zero_copy_view() {
        let arena = Arena::new(OS_PAGE * 8, OS_PAGE * 8);
        if !arena.supports_alias() {
            eprintln!("mmap arena unavailable; skipping alias test");
            return;
        }
        // SAFETY: single-threaded test over disjoint frame ranges; the alias
        // view is only read after the writes through the frame mapping.
        unsafe {
            // Two disjoint "extents" at frame offsets 1 and 5.
            arena.frame_slice_mut(OS_PAGE, OS_PAGE).fill(0x11);
            arena.frame_slice_mut(5 * OS_PAGE, 2 * OS_PAGE).fill(0x22);

            // Alias them contiguously at offset 0 of the alias region.
            arena.alias_map(0, OS_PAGE, OS_PAGE).unwrap();
            arena.alias_map(OS_PAGE, 5 * OS_PAGE, 2 * OS_PAGE).unwrap();

            let view = std::slice::from_raw_parts(arena.alias_base(), 3 * OS_PAGE);
            assert!(view[..OS_PAGE].iter().all(|&b| b == 0x11));
            assert!(view[OS_PAGE..].iter().all(|&b| b == 0x22));

            // Zero-copy: mutating the frame shows through the alias.
            arena.frame_slice_mut(OS_PAGE, 1)[0] = 0x99;
            assert_eq!(view[0], 0x99);

            arena.alias_unmap(0, 3 * OS_PAGE);
        }
    }

    #[test]
    fn heap_fallback_reports_no_alias_support() {
        // Force the heap path by requesting zero alias space.
        let arena = Arena::new(OS_PAGE, 0);
        assert!(!arena.supports_alias());
    }
}
