//! The uniform object-store surface all benchmarks drive, plus the adapter
//! that puts our own engine behind it.

use lobster_core::{Config, Database, Relation, RelationKind};
use lobster_metrics::{Metrics, Snapshot};
use lobster_storage::Device;
use lobster_types::{Error, Result};
use std::sync::Arc;

/// Aggregate statistics a store reports after a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    pub metrics: Snapshot,
    /// Fraction of the managed space in use (for Figure 11).
    pub utilization: f64,
}

/// A key → object store: the common denominator of a DBMS BLOB relation
/// and a directory of files. All §V YCSB-style experiments run against
/// this trait.
pub trait ObjectStore: Send + Sync {
    /// Short display name used in benchmark tables ("Our", "Ext4.journal",
    /// "PostgreSQL", …).
    fn label(&self) -> &str;

    /// Create an object; the key must not exist.
    fn put(&self, key: &str, data: &[u8]) -> Result<()>;

    /// Replace an object's content entirely (YCSB update).
    fn replace(&self, key: &str, data: &[u8]) -> Result<()> {
        // Default: delete + put (what file systems do with O_TRUNC).
        match self.delete(key) {
            Ok(()) | Err(Error::KeyNotFound) => {}
            Err(e) => return Err(e),
        }
        self.put(key, data)
    }

    /// Read the whole object, handing it to `f`.
    fn get(&self, key: &str, f: &mut dyn FnMut(&[u8])) -> Result<()>;

    /// Remove an object.
    fn delete(&self, key: &str) -> Result<()>;

    /// Object size, or `None` if absent (the `fstat` analogue).
    fn stat(&self, key: &str) -> Result<Option<u64>>;

    /// Current statistics.
    fn stats(&self) -> StoreStats;

    /// Make everything durable (end-of-run barrier; not on the hot path
    /// because the paper disables fsync for all competitors).
    fn flush(&self) -> Result<()> {
        Ok(())
    }

    /// Wait for background work (asynchronous group commits) so measured
    /// windows and metric snapshots cover every submitted operation.
    fn quiesce(&self) {}
}

/// How [`LobsterStore`] maps objects onto the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LobsterMode {
    /// Objects are BLOBs in a blob relation (the paper's BLOB workloads).
    Blobs,
    /// Objects are plain rows (the 120 B "normal YCSB" of Figure 5).
    Rows,
}

/// Our engine behind the [`ObjectStore`] trait. Configure the underlying
/// [`Config`] for the `Our` / `Our.ht` / `Our.physlog` variants.
pub struct LobsterStore {
    label: String,
    db: Arc<Database>,
    rel: Arc<Relation>,
    mode: LobsterMode,
}

impl LobsterStore {
    pub fn new(
        label: &str,
        device: Arc<dyn Device>,
        wal_device: Arc<dyn Device>,
        cfg: Config,
        mode: LobsterMode,
    ) -> Result<Self> {
        let db = Database::create(device, wal_device, cfg)?;
        let kind = match mode {
            LobsterMode::Blobs => RelationKind::Blob,
            LobsterMode::Rows => RelationKind::Kv,
        };
        let rel = db.create_relation("objects", kind)?;
        Ok(LobsterStore {
            label: label.to_string(),
            db,
            rel,
            mode,
        })
    }

    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    pub fn relation(&self) -> &Arc<Relation> {
        &self.rel
    }
}

impl ObjectStore for LobsterStore {
    fn label(&self) -> &str {
        &self.label
    }

    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        let mut t = self.db.begin();
        match self.mode {
            LobsterMode::Blobs => t.put_blob(&self.rel, key.as_bytes(), data)?,
            LobsterMode::Rows => t.put_kv(&self.rel, key.as_bytes(), data)?,
        }
        t.commit()
    }

    fn replace(&self, key: &str, data: &[u8]) -> Result<()> {
        let mut t = self.db.begin();
        match self.mode {
            LobsterMode::Blobs => {
                match t.delete_blob(&self.rel, key.as_bytes()) {
                    Ok(()) | Err(Error::KeyNotFound) => {}
                    Err(e) => return Err(e),
                }
                t.put_blob(&self.rel, key.as_bytes(), data)?;
            }
            LobsterMode::Rows => t.put_kv(&self.rel, key.as_bytes(), data)?,
        }
        t.commit()
    }

    fn get(&self, key: &str, f: &mut dyn FnMut(&[u8])) -> Result<()> {
        let mut t = self.db.begin();
        match self.mode {
            LobsterMode::Blobs => {
                t.get_blob(&self.rel, key.as_bytes(), |b| f(b))?;
            }
            LobsterMode::Rows => {
                let v = t
                    .get_kv(&self.rel, key.as_bytes())?
                    .ok_or(Error::KeyNotFound)?;
                f(&v);
            }
        }
        t.commit()
    }

    fn delete(&self, key: &str) -> Result<()> {
        let mut t = self.db.begin();
        match self.mode {
            LobsterMode::Blobs => t.delete_blob(&self.rel, key.as_bytes())?,
            LobsterMode::Rows => {
                if !t.delete_kv(&self.rel, key.as_bytes())? {
                    return Err(Error::KeyNotFound);
                }
            }
        }
        t.commit()
    }

    fn stat(&self, key: &str) -> Result<Option<u64>> {
        let mut t = self.db.begin();
        let size = match self.mode {
            LobsterMode::Blobs => t.blob_state(&self.rel, key.as_bytes())?.map(|s| s.size),
            LobsterMode::Rows => t.get_kv(&self.rel, key.as_bytes())?.map(|v| v.len() as u64),
        };
        t.commit()?;
        Ok(size)
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            metrics: self.db.metrics().snapshot(),
            utilization: self.db.utilization(),
        }
    }

    fn flush(&self) -> Result<()> {
        self.db.checkpoint()
    }

    fn quiesce(&self) {
        self.db
            .wait_for_durability()
            .expect("async commits durable");
    }
}

/// Expose the shared metrics type for implementors.
pub(crate) fn snapshot_of(metrics: &Metrics) -> Snapshot {
    metrics.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_storage::MemDevice;

    fn store(mode: LobsterMode) -> LobsterStore {
        LobsterStore::new(
            "Our",
            Arc::new(MemDevice::new(64 << 20)),
            Arc::new(MemDevice::new(16 << 20)),
            Config {
                pool_frames: 2048,
                ..Config::default()
            },
            mode,
        )
        .unwrap()
    }

    #[test]
    fn blob_mode_roundtrip() {
        let s = store(LobsterMode::Blobs);
        s.put("a", &[7u8; 50_000]).unwrap();
        let mut len = 0;
        s.get("a", &mut |b| len = b.len()).unwrap();
        assert_eq!(len, 50_000);
        assert_eq!(s.stat("a").unwrap(), Some(50_000));
        s.replace("a", b"small now").unwrap();
        assert_eq!(s.stat("a").unwrap(), Some(9));
        s.delete("a").unwrap();
        assert_eq!(s.stat("a").unwrap(), None);
        assert!(matches!(s.delete("a"), Err(Error::KeyNotFound)));
    }

    #[test]
    fn row_mode_roundtrip() {
        let s = store(LobsterMode::Rows);
        s.put("k", &[1u8; 120]).unwrap();
        s.replace("k", &[2u8; 120]).unwrap();
        let mut got = Vec::new();
        s.get("k", &mut |b| got = b.to_vec()).unwrap();
        assert_eq!(got, vec![2u8; 120]);
        assert!(s.stats().utilization > 0.0);
    }
}
