//! Table I: the storage-format survey, *measured* rather than quoted —
//! for each system we store one 10 MB BLOB and read it back, reporting
//! the duplicate copies (write amplification), log volume, read
//! indirections, and read copies that the paper's table catalogues.

use crate::*;
use lobster_baselines::{
    ClientServerCost, FsProfile, LobsterMode, ModelFs, ObjectStore, OverflowStore, SqliteStore,
    ToastStore,
};

pub(crate) fn run(report: &mut Report) {
    banner(
        "Table I — measured storage-format properties (one 10 MB BLOB)",
        "§II Table I",
    );
    let blob = 10 << 20;
    let data = make_payload(blob, 1);

    let mut table = Table::new(&[
        "system",
        "write amp",
        "log bytes",
        "read indirections",
        "read memcpy",
        "pages read (warm)",
    ]);

    let systems: Vec<(String, Box<dyn ObjectStore>)> = vec![
        ("Our".into(), (sys_our(LobsterMode::Blobs).build)()),
        (
            "Ext4.ordered".into(),
            Box::new(ModelFs::new(
                FsProfile::ext4_ordered(),
                mem_device(1 << 30),
                16 * 1024,
            )),
        ),
        (
            "Ext4.journal".into(),
            Box::new(ModelFs::new(
                FsProfile::ext4_journal(),
                mem_device(1 << 30),
                16 * 1024,
            )),
        ),
        (
            "PostgreSQL".into(),
            Box::new(ToastStore::new(
                mem_device(1 << 30),
                16 * 1024,
                ClientServerCost::none(),
            )),
        ),
        (
            "MySQL".into(),
            Box::new(OverflowStore::new(
                mem_device(1 << 30),
                16 * 1024,
                ClientServerCost::none(),
            )),
        ),
        (
            "SQLite".into(),
            Box::new(SqliteStore::new(mem_device(1 << 30), 16 * 1024, false)),
        ),
        (
            "SQLite+index".into(),
            Box::new(SqliteStore::new(mem_device(1 << 30), 16 * 1024, true)),
        ),
    ];

    for (name, store) in systems {
        let before = store.stats().metrics;
        store.put("blob", &data).expect("put");
        store.flush().ok();
        let after_write = store.stats().metrics;
        let write_delta = after_write - before;

        // Warm read: indirections + copies.
        let mut sink = 0usize;
        store.get("blob", &mut |b| sink = b.len()).expect("read");
        assert_eq!(sink, blob);
        let after_read = store.stats().metrics;
        let read_delta = after_read - after_write;

        let write_amp = write_delta.bytes_written as f64 / blob as f64;
        report.push(
            Entry::new(&name, "write_amplification", "x", write_amp, false)
                .param("blob", "10MB")
                .counters(write_delta),
        );
        report.push(
            Entry::new(
                &name,
                "read_memcpy",
                "bytes",
                read_delta.memcpy_bytes as f64,
                false,
            )
            .param("blob", "10MB")
            .counters(read_delta),
        );
        table.row(&[
            name,
            format!("{write_amp:.2}x"),
            fmt_bytes(write_delta.wal_bytes as f64),
            format!(
                "{}",
                read_delta.btree_node_accesses + read_delta.translations
            ),
            fmt_bytes(read_delta.memcpy_bytes as f64),
            format!("{}", read_delta.pages_read),
        ]);
    }
    table.print();
    println!("\npaper (Table I): all surveyed systems keep >=2 copies per BLOB and use");
    println!("multi-layer structures; Our keeps one copy behind one indirection layer.");
}
