//! BLOB indexing (§III-F).
//!
//! The *Blob State index* stores serialized Blob States as B-Tree keys,
//! ordered by BLOB **content** through the incremental comparator:
//!
//! 1. equality fast path — compare the embedded SHA-256 digests;
//! 2. cheap range check — compare the embedded 32-byte prefixes;
//! 3. only if the prefixes tie: compare the contents extent by extent,
//!    loading extents lazily (never materializing whole BLOBs);
//! 4. if one BLOB is a prefix of the other, order by size.
//!
//! Unlike SQLite's WITHOUT-ROWID index, no BLOB content is copied into the
//! index — the Blob State already references the data. Unlike prefix
//! indexes (MySQL/PostgreSQL), no key is ever rejected or collides.
//!
//! [`ExpressionIndex`] implements the paper's *semantic index*: rows are
//! indexed by a UDF computed over the BLOB content (`CREATE INDEX ON
//! image(classify(content))`).

use crate::blob_state::{BlobState, PREFIX_LEN};
use crate::catalog::Relation;
use crate::db::Database;
use crate::txn::Txn;
use lobster_btree::KeyCmp;
use lobster_buffer::BlobPool;
use lobster_extent::TierTable;
use lobster_sync::Arc;
use lobster_types::Result;
use std::cmp::Ordering;

/// The incremental Blob State comparator.
pub struct BlobStateCmp {
    pool: BlobPool,
    table: Arc<TierTable>,
}

impl BlobStateCmp {
    pub fn new(db: &Database) -> Arc<Self> {
        Arc::new(BlobStateCmp {
            pool: db.blob_pool().clone(),
            table: db.tier_table().clone(),
        })
    }

    pub fn from_parts(pool: BlobPool, table: Arc<TierTable>) -> Arc<Self> {
        Arc::new(BlobStateCmp { pool, table })
    }

    /// Compare the contents of two BLOBs extent-incrementally.
    fn cmp_contents(&self, a: &BlobState, b: &BlobState) -> Ordering {
        let specs_a = a.extent_specs(&self.table);
        let specs_b = b.extent_specs(&self.table);
        let mut cur_a = ChunkCursor::new(&self.pool, specs_a, a.size);
        let mut cur_b = ChunkCursor::new(&self.pool, specs_b, b.size);
        loop {
            match (cur_a.chunk(), cur_b.chunk()) {
                (Some(ca), Some(cb)) => {
                    let n = ca.len().min(cb.len());
                    match ca[..n].cmp(&cb[..n]) {
                        Ordering::Equal => {
                            cur_a.advance(n);
                            cur_b.advance(n);
                        }
                        other => return other,
                    }
                }
                // One stream exhausted: the shorter BLOB is a prefix of the
                // longer one; order by size (§III-F).
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (None, None) => return a.size.cmp(&b.size),
            }
        }
    }
}

impl KeyCmp for BlobStateCmp {
    fn cmp_keys(&self, stored: &[u8], probe: &[u8]) -> Ordering {
        // Steps 1 and 2 read the fixed-offset fields straight out of the
        // encodings — no allocation on the overwhelmingly common paths.
        const SHA_RANGE: std::ops::Range<usize> = 8..40;
        const PREFIX_OFF: usize = 72;
        if stored.len() < PREFIX_OFF + PREFIX_LEN || probe.len() < PREFIX_OFF + PREFIX_LEN {
            // Defensive: fall back to raw bytes for undecodable keys.
            return stored.cmp(probe);
        }
        // 1. SHA-256 equality fast path.
        if stored[SHA_RANGE] == probe[SHA_RANGE] {
            return Ordering::Equal;
        }
        // 2. Embedded-prefix range check. A difference within the common
        // 32 bytes is decisive, and so is a strict length difference (the
        // shorter prefix is then the shorter BLOB's *entire* content).
        let size_a = lobster_types::read_u64(stored);
        let size_b = lobster_types::read_u64(probe);
        let pa = &stored[PREFIX_OFF..PREFIX_OFF + (size_a.min(PREFIX_LEN as u64)) as usize];
        let pb = &probe[PREFIX_OFF..PREFIX_OFF + (size_b.min(PREFIX_LEN as u64)) as usize];
        match pa.cmp(pb) {
            Ordering::Equal => {}
            other => return other,
        }
        // Prefixes tie with equal length. Two unequal BLOBs shorter than
        // the prefix would have been separated above, so both are at least
        // PREFIX_LEN bytes: compare content incrementally (3./4.), which
        // needs the full extent lists.
        let (Ok(a), Ok(b)) = (BlobState::decode(stored), BlobState::decode(probe)) else {
            return stored.cmp(probe);
        };
        self.cmp_contents(&a, &b)
    }
}

/// Lazily materializes a BLOB's extents one at a time for streaming
/// comparison.
struct ChunkCursor<'p> {
    pool: &'p BlobPool,
    specs: Vec<lobster_extent::ExtentSpec>,
    page_size: usize,
    remaining: u64,
    ext_idx: usize,
    buf: Vec<u8>,
    buf_pos: usize,
}

impl<'p> ChunkCursor<'p> {
    fn new(pool: &'p BlobPool, specs: Vec<lobster_extent::ExtentSpec>, size: u64) -> Self {
        ChunkCursor {
            pool,
            specs,
            page_size: pool.page_size(),
            remaining: size,
            ext_idx: 0,
            buf: Vec::new(),
            buf_pos: 0,
        }
    }

    /// Current unconsumed bytes, loading the next extent as needed.
    fn chunk(&mut self) -> Option<&[u8]> {
        if self.buf_pos < self.buf.len() {
            return Some(&self.buf[self.buf_pos..]);
        }
        while self.remaining > 0 && self.ext_idx < self.specs.len() {
            let spec = self.specs[self.ext_idx];
            self.ext_idx += 1;
            let ext_bytes = (spec.pages as usize) * self.page_size;
            let take = (self.remaining as usize).min(ext_bytes);
            let loaded = self
                .pool
                .read_blob(0, &[spec], take as u64, |b| b.to_vec())
                .ok()?;
            self.remaining -= take as u64;
            if loaded.is_empty() {
                continue;
            }
            self.buf = loaded;
            self.buf_pos = 0;
            return Some(&self.buf[self.buf_pos..]);
        }
        None
    }

    fn advance(&mut self, n: usize) {
        self.buf_pos += n;
    }
}

/// A content index over a blob relation: serialized Blob States as keys
/// (ordered by the incremental comparator), row keys as values.
///
/// Maintenance goes through the owning transaction's KV operations, so an
/// index update commits, rolls back, and recovers together with the BLOB
/// it describes.
pub struct BlobIndex {
    pub relation: Arc<Relation>,
}

impl BlobIndex {
    /// Create the index relation (`<blob_rel>__content` by convention).
    pub fn create(db: &Database, blob_rel: &Relation) -> Result<Self> {
        let relation = db.create_relation_with(
            &format!("{}__content", blob_rel.name),
            crate::catalog::RelationKind::Kv,
            BlobStateCmp::new(db),
            2, // 8 KiB nodes: Blob States are a few hundred bytes
        )?;
        Ok(BlobIndex { relation })
    }

    /// Reattach after [`Database::open`] (custom comparators must be
    /// rebound; see [`Database::rebind_comparator`]).
    pub fn reopen(db: &Database, blob_rel_name: &str) -> Result<Self> {
        let relation =
            db.rebind_comparator(&format!("{blob_rel_name}__content"), BlobStateCmp::new(db))?;
        Ok(BlobIndex { relation })
    }

    /// Store a BLOB and index it, in one transaction.
    pub fn put_blob(
        &self,
        txn: &mut Txn,
        blob_rel: &Relation,
        key: &[u8],
        data: &[u8],
    ) -> Result<()> {
        txn.put_blob(blob_rel, key, data)?;
        let state = txn.blob_state(blob_rel, key)?.expect("just inserted");
        txn.put_kv(&self.relation, &state.encode(), key)
    }

    /// Delete a BLOB and its index entry, in one transaction.
    pub fn delete_blob(&self, txn: &mut Txn, blob_rel: &Relation, key: &[u8]) -> Result<()> {
        let state = txn
            .blob_state(blob_rel, key)?
            .ok_or(lobster_types::Error::KeyNotFound)?;
        txn.delete_kv(&self.relation, &state.encode())?;
        txn.delete_blob(blob_rel, key)
    }

    /// Find the row whose content equals the probe state's content
    /// (SHA-256 fast path inside the comparator).
    pub fn lookup(&self, state: &BlobState) -> Result<Option<Vec<u8>>> {
        self.relation.tree.lookup(&state.encode())
    }

    /// Visit rows in content order starting at `from`.
    pub fn scan_from(
        &self,
        from: &BlobState,
        mut f: impl FnMut(&BlobState, &[u8]) -> bool,
    ) -> Result<()> {
        self.relation
            .tree
            .scan_from(&from.encode(), |k, v| match BlobState::decode(k) {
                Ok(state) => f(&state, v),
                Err(_) => false,
            })
    }
}

/// A semantic (expression) index: rows ordered by `udf(blob_content)`.
///
/// Index keys are `udf(content) ++ 0x00 ++ row_key`, so equal UDF values
/// coexist and scans return row keys in order.
/// A user-defined function computing the indexed value from BLOB content.
pub type Udf = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

pub struct ExpressionIndex {
    pub relation: Arc<Relation>,
    udf: Udf,
}

impl ExpressionIndex {
    /// Create the index relation (`<blob_rel>__<name>` by convention).
    pub fn create(db: &Database, blob_rel: &Relation, name: &str, udf: Udf) -> Result<Self> {
        let rel_name = format!("{}__{}", blob_rel.name, name);
        let relation = db.create_relation(&rel_name, crate::catalog::RelationKind::Kv)?;
        Ok(ExpressionIndex { relation, udf })
    }

    fn index_key(value: &[u8], row_key: &[u8]) -> Vec<u8> {
        let mut k = Vec::with_capacity(value.len() + 1 + row_key.len());
        k.extend_from_slice(value);
        k.push(0);
        k.extend_from_slice(row_key);
        k
    }

    /// Index one row: computes the UDF over the BLOB content.
    pub fn insert(&self, txn: &mut Txn, blob_rel: &Relation, row_key: &[u8]) -> Result<()> {
        let udf = self.udf.clone();
        let value = txn.get_blob(blob_rel, row_key, |content| udf(content))?;
        txn.put_kv(&self.relation, &Self::index_key(&value, row_key), &[])
    }

    /// Remove a row from the index (UDF recomputed over current content;
    /// call *before* deleting the BLOB).
    pub fn remove(&self, txn: &mut Txn, blob_rel: &Relation, row_key: &[u8]) -> Result<()> {
        let udf = self.udf.clone();
        let value = txn.get_blob(blob_rel, row_key, |content| udf(content))?;
        txn.delete_kv(&self.relation, &Self::index_key(&value, row_key))?;
        Ok(())
    }

    /// All row keys whose UDF value equals `value` (the paper's
    /// `SELECT ... WHERE classify(content)='cat'`).
    pub fn scan_eq(&self, value: &[u8]) -> Result<Vec<Vec<u8>>> {
        let mut start = value.to_vec();
        start.push(0);
        let mut rows = Vec::new();
        self.relation.tree.scan_from(&start, |k, _| {
            if k.len() > value.len() && &k[..value.len()] == value && k[value.len()] == 0 {
                rows.push(k[value.len() + 1..].to_vec());
                true
            } else {
                false
            }
        })?;
        Ok(rows)
    }
}
