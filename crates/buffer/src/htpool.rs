//! Traditional hash-table buffer pool — the paper's `Our.ht` baseline
//! (§V-B "Baselines").
//!
//! Pages are translated *individually* through a sharded hash map, frames
//! are scattered heap allocations, and BLOB reads must allocate a buffer and
//! gather the pages with `memcpy` — the exact costs §V-E attributes to
//! pre-vmcache buffer pools (N translations per N-page extent, plus
//! malloc+memcpy on every read).

use lobster_extent::ExtentSpec;
use lobster_metrics::Metrics;
use lobster_storage::{AsyncIo, BatchHandle, Device, IoKind, IoReq};
use lobster_sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use lobster_sync::audit::LatchLedger;
use lobster_sync::{Arc, Mutex, RwLock};
use lobster_types::{Error, Geometry, Pid, Result, RetryPolicy};
use rand::Rng;
use std::collections::HashMap;

// Memory-ordering note (satellite audit, PR 4): `Relaxed` here is confined
// to metrics bumps, the `pages` size estimate (eviction pacing only — the
// sharded maps are the authoritative residency state, under their locks),
// and the `batched_faults` config flag. The per-frame `dirty`/`prevent_evict`
// flags use Acquire/Release: eviction reads them to decide whether a frame
// may be dropped.

const SHARDS: usize = 64;

struct PageFrame {
    data: RwLock<Box<[u8]>>,
    dirty: AtomicBool,
    prevent_evict: AtomicBool,
}

/// One in-flight commit-time flush for the hash-table pool, submitted by
/// [`HashTablePool::flush_extents_begin`]; the gathered scratch buffers
/// backing the device writes live here until the batch is reaped.
pub struct HtFlushBatch {
    handle: BatchHandle,
    items: Vec<crate::pool::FlushItem>,
    /// Write sources referenced by the in-flight requests.
    _bufs: Vec<Vec<u8>>,
}

impl HtFlushBatch {
    /// Non-blocking completion check; never executes queued requests
    /// inline (see [`crate::pool::ExtentFlushBatch::try_complete`]).
    pub fn try_complete(&self) -> Option<Result<()>> {
        if !self.handle.is_complete() {
            return None;
        }
        self.handle.try_complete()
    }

    /// Block until every request has executed and the modeled device
    /// deadline has passed; the result stays reapable.
    pub fn wait_done(&self) {
        self.handle.wait_done();
    }

    /// The flush items this batch is writing.
    pub fn items(&self) -> &[crate::pool::FlushItem] {
        &self.items
    }
}

/// Page-granular hash-table buffer pool.
pub struct HashTablePool {
    device: Arc<dyn Device>,
    geo: Geometry,
    shards: Vec<Mutex<HashMap<u64, Arc<PageFrame>>>>,
    max_pages: u64,
    pages: AtomicU64,
    io: AsyncIo,
    batched_faults: AtomicBool,
    /// Transient-read retry budget (plumbed like `batched_faults`).
    io_retries: AtomicU32,
    metrics: Metrics,
    /// Debug-only pin ledger (per-page `prevent_evict` shadow).
    audit: LatchLedger,
}

impl HashTablePool {
    pub fn new(
        device: Arc<dyn Device>,
        geo: Geometry,
        max_pages: u64,
        metrics: Metrics,
    ) -> Arc<Self> {
        Arc::new(HashTablePool {
            device: device.clone(),
            geo,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            max_pages,
            pages: AtomicU64::new(0),
            io: AsyncIo::new(device, 2),
            batched_faults: AtomicBool::new(true),
            io_retries: AtomicU32::new(3),
            metrics,
            audit: LatchLedger::new(),
        })
    }

    /// Enable or disable the batched cold-read fault path (plumbed from the
    /// engine configuration; on by default).
    pub fn set_batched_faults(&self, on: bool) {
        // ordering: Relaxed; config knob, a worker may lag a toggle by one fault
        self.batched_faults.store(on, Ordering::Relaxed);
    }

    /// Set the transient-read retry budget (plumbed from the engine
    /// configuration; `0` restores fail-fast).
    pub fn set_io_retries(&self, n: u32) {
        // ordering: Relaxed; config knob, any recent value is acceptable
        self.io_retries.store(n, Ordering::Relaxed);
    }

    #[inline]
    fn retry(&self) -> RetryPolicy {
        // ordering: Relaxed; config knob read (see set_io_retries)
        RetryPolicy::new(self.io_retries.load(Ordering::Relaxed))
    }

    pub fn pages_in_use(&self) -> u64 {
        // ordering: Relaxed; occupancy gauge for tests and diagnostics
        self.pages.load(Ordering::Relaxed)
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The pool's pin ledger (debug-only invariant auditor).
    pub fn audit(&self) -> &LatchLedger {
        &self.audit
    }

    pub fn page_size(&self) -> usize {
        self.geo.page_size()
    }

    #[inline]
    fn shard(&self, pid: Pid) -> &Mutex<HashMap<u64, Arc<PageFrame>>> {
        // Multiplicative hash keeps consecutive pids on different shards.
        let h = pid.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 58) as usize % SHARDS]
    }

    /// Residency probe that charges no translation/latch cost — used only
    /// to partition extents before a batched fault.
    fn resident_quiet(&self, pid: Pid) -> bool {
        self.shard(pid).lock().contains_key(&pid.raw())
    }

    fn lookup(&self, pid: Pid) -> Option<Arc<PageFrame>> {
        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.metrics.translations.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .latch_acquisitions
            .fetch_add(1, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.shard(pid).lock().get(&pid.raw()).cloned()
    }

    fn insert(&self, pid: Pid, frame: Arc<PageFrame>) {
        if self.shard(pid).lock().insert(pid.raw(), frame).is_none() {
            // ordering: Relaxed occupancy counter; the shard mutexes order the maps themselves
            self.pages.fetch_add(1, Ordering::Relaxed);
        }
        // ordering: Relaxed; pressure check tolerates a stale count by a page or two
        while self.pages.load(Ordering::Relaxed) > self.max_pages {
            if !self.evict_one() {
                break;
            }
        }
    }

    /// Random eviction of one clean, unpinned page.
    fn evict_one(&self) -> bool {
        let mut rng = rand::thread_rng();
        for _ in 0..SHARDS * 4 {
            let idx = rng.gen_range(0..SHARDS);
            let victim = {
                let shard = self.shards[idx].lock();
                if shard.is_empty() {
                    continue;
                }
                let skip = rng.gen_range(0..shard.len());
                shard.iter().nth(skip).map(|(&pid, f)| (pid, f.clone()))
            };
            let Some((pid, frame)) = victim else { continue };
            // No-steal: dirty or pinned pages stay resident until the
            // commit flush or a checkpoint cleans them.
            // ordering: Acquire; pairs with writers' Release stores, clean+unpinned implies no unflushed bytes
            if frame.prevent_evict.load(Ordering::Acquire) || frame.dirty.load(Ordering::Acquire) {
                continue;
            }
            if self.shards[idx].lock().remove(&pid).is_some() {
                // ordering: Relaxed occupancy counter; the shard mutex ordered the remove
                let prev = self.pages.fetch_sub(1, Ordering::Relaxed);
                debug_assert!(prev > 0, "page counter underflow on eviction");
                return true;
            }
        }
        false
    }

    /// Load one whole extent from the device and distribute it into page
    /// frames (one I/O, then per-page copies).
    fn load_extent(&self, spec: ExtentSpec) -> Result<()> {
        let p = self.geo.page_size();
        let mut scratch = vec![0u8; (spec.pages as usize) * p];
        let t = self.metrics.latencies.timer();
        let (res, stats) = self.retry().run(|| {
            self.device
                .read_at(&mut scratch, self.geo.offset_of(spec.start))
        });
        self.metrics.bump_io_retry(stats.retries, stats.gave_up);
        res?;
        self.metrics.latencies.pool_fault.record_timer(t);
        self.metrics
            .pages_read
            .fetch_add(spec.pages, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.distribute(spec, &scratch);
        Ok(())
    }

    /// Copy an extent image into individual page frames, skipping pages that
    /// became resident in the meantime.
    fn distribute(&self, spec: ExtentSpec, scratch: &[u8]) {
        let p = self.geo.page_size();
        for i in 0..spec.pages {
            let pid = spec.start.offset(i);
            if self.lookup(pid).is_some() {
                continue;
            }
            let mut page = vec![0u8; p].into_boxed_slice();
            page.copy_from_slice(&scratch[(i as usize) * p..(i as usize + 1) * p]);
            self.metrics.bump_memcpy(p as u64);
            self.insert(
                pid,
                Arc::new(PageFrame {
                    data: RwLock::new(page),
                    dirty: AtomicBool::new(false),
                    prevent_evict: AtomicBool::new(false),
                }),
            );
        }
    }

    /// Batched cold-read faulting: every extent with a missing page is read
    /// from the device in ONE [`AsyncIo`] submission, then distributed into
    /// page frames. Compare the serial path, which issues one blocking read
    /// per extent from inside `get_or_load_page`.
    fn fault_many(&self, extents: &[ExtentSpec]) -> Result<()> {
        let p = self.geo.page_size();
        let missing: Vec<ExtentSpec> = extents
            .iter()
            .copied()
            .filter(|spec| (0..spec.pages).any(|i| !self.resident_quiet(spec.start.offset(i))))
            .collect();
        if missing.len() < 2 {
            // Zero or one cold extent: the serial path is already minimal.
            return Ok(());
        }
        let mut bufs: Vec<Vec<u8>> = missing
            .iter()
            .map(|spec| vec![0u8; (spec.pages as usize) * p])
            .collect();
        let reqs: Vec<IoReq> = missing
            .iter()
            .zip(bufs.iter_mut())
            .map(|(spec, buf)| IoReq {
                kind: IoKind::Read,
                offset: self.geo.offset_of(spec.start),
                ptr: buf.as_mut_ptr(),
                len: buf.len(),
            })
            .collect();
        let t = self.metrics.latencies.timer();
        // SAFETY: `bufs` outlives the blocking wait and is not touched until
        // the batch completes.
        if let Err(err) = unsafe { self.io.submit_and_wait(reqs) } {
            // The engine reports only the first error per batch. With
            // retries enabled, fall back to serial re-reads into the same
            // owned buffers: each extent runs under the retry policy,
            // successes distribute into page frames, and the first extent
            // that exhausts its budget surfaces its error (its pages stay
            // cold for the caller's serial path to report consistently).
            let retry = self.retry();
            if retry.max_retries == 0 {
                return Err(err);
            }
            let mut first_err: Option<Error> = None;
            for (spec, buf) in missing.iter().zip(bufs.iter_mut()) {
                let (res, stats) =
                    retry.run(|| self.device.read_at(buf, self.geo.offset_of(spec.start)));
                self.metrics.bump_io_retry(stats.retries, stats.gave_up);
                match res {
                    Ok(()) => {
                        self.metrics
                            .pages_read
                            .fetch_add(spec.pages, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                        self.distribute(*spec, buf);
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            return match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            };
        }
        self.metrics.latencies.pool_fault.record_timer(t);
        let total: u64 = missing.iter().map(|s| s.pages).sum();
        self.metrics.pages_read.fetch_add(total, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.metrics.fault_batches.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .pages_faulted_batched
            .fetch_add(total, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                                                  // One miss per cold extent, matching what the serial path would have
                                                  // charged via its triggering page.
        self.metrics
            .cache_misses
            .fetch_add(missing.len() as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        for (spec, buf) in missing.iter().zip(&bufs) {
            self.distribute(*spec, buf);
        }
        Ok(())
    }

    fn get_or_load_page(&self, spec: ExtentSpec, pid: Pid) -> Result<Arc<PageFrame>> {
        if let Some(f) = self.lookup(pid) {
            // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(f);
        }
        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
        // Under memory pressure a freshly loaded page can be evicted before
        // we re-find it; retry a few times before giving up.
        for _ in 0..8 {
            self.load_extent(spec)?;
            if let Some(f) = self.lookup(pid) {
                return Ok(f);
            }
        }
        Err(Error::BufferFull)
    }

    /// Write fresh content into a newly allocated extent's page frames
    /// (dirty + pinned until the commit flush).
    pub fn fill_extent(&self, spec: ExtentSpec, src: &[u8]) -> Result<()> {
        self.write_range(spec, 0, src, false)
    }

    /// [`HashTablePool::fill_extent`] fused with content hashing: `digest`
    /// sees each page-sized chunk right after it is copied, while the
    /// bytes are still hot in cache — one pass over `src` instead of
    /// copy-then-rehash.
    pub fn fill_extent_hashed(
        &self,
        spec: ExtentSpec,
        src: &[u8],
        digest: &mut dyn FnMut(&[u8]),
    ) -> Result<()> {
        let p = self.geo.page_size();
        debug_assert!(src.len() <= (spec.pages as usize) * p);
        let mut off = 0usize;
        let mut page = 0u64;
        // At least one iteration, mirroring write_range: an empty source
        // still dirties (and pins) the extent's first page.
        loop {
            let take = (src.len() - off).min(p);
            let pid = spec.start.offset(page);
            let frame = match self.lookup(pid) {
                Some(f) => f,
                None => {
                    let f = Arc::new(PageFrame {
                        data: RwLock::new(vec![0u8; p].into_boxed_slice()),
                        dirty: AtomicBool::new(false),
                        prevent_evict: AtomicBool::new(false),
                    });
                    self.insert(pid, f.clone());
                    f
                }
            };
            let mut data = frame.data.write();
            data[..take].copy_from_slice(&src[off..off + take]);
            self.metrics.bump_memcpy(take as u64);
            digest(&data[..take]);
            frame.dirty.store(true, Ordering::Release); // ordering: Release; written bytes are published before the flags the evictor Acquires
            frame.prevent_evict.store(true, Ordering::Release);
            self.audit.pin(pid.raw());
            off += take;
            page += 1;
            if off >= src.len() {
                break;
            }
        }
        Ok(())
    }

    /// Overwrite a byte range within an extent; `load_existing` pulls pages
    /// from the device first when they might be partially overwritten.
    pub fn write_range(
        &self,
        spec: ExtentSpec,
        byte_off: usize,
        src: &[u8],
        load_existing: bool,
    ) -> Result<()> {
        let p = self.geo.page_size();
        debug_assert!(byte_off + src.len() <= (spec.pages as usize) * p);
        let first_page = byte_off / p;
        let last_page = (byte_off + src.len()).div_ceil(p).max(first_page + 1);
        for i in first_page..last_page.min(spec.pages as usize) {
            let pid = spec.start.offset(i as u64);
            let frame = if load_existing {
                self.get_or_load_page(spec, pid)?
            } else {
                match self.lookup(pid) {
                    Some(f) => f,
                    None => {
                        let page = vec![0u8; p].into_boxed_slice();
                        let f = Arc::new(PageFrame {
                            data: RwLock::new(page),
                            dirty: AtomicBool::new(false),
                            prevent_evict: AtomicBool::new(false),
                        });
                        self.insert(pid, f.clone());
                        f
                    }
                }
            };
            // Byte range of this page within the extent.
            let page_start = i * p;
            let page_end = page_start + p;
            let copy_start = byte_off.max(page_start);
            let copy_end = (byte_off + src.len()).min(page_end);
            let mut data = frame.data.write();
            data[copy_start - page_start..copy_end - page_start]
                .copy_from_slice(&src[copy_start - byte_off..copy_end - byte_off]);
            self.metrics.bump_memcpy((copy_end - copy_start) as u64);
            frame.dirty.store(true, Ordering::Release); // ordering: Release; written bytes are published before the flags the evictor Acquires
            frame.prevent_evict.store(true, Ordering::Release);
            self.audit.pin(pid.raw());
        }
        Ok(())
    }

    /// Gather a BLOB into a freshly allocated buffer and hand it to `f` —
    /// the malloc+memcpy read path of hash-table pools (§V-E).
    pub fn read_blob<R>(
        &self,
        extents: &[ExtentSpec],
        len: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        // ordering: Relaxed; config knob, a stale read just picks the other fault path
        if self.batched_faults.load(Ordering::Relaxed) && extents.len() > 1 {
            self.fault_many(extents)?;
        }
        let p = self.geo.page_size();
        let len = len as usize;
        let mut buf = Vec::with_capacity(len);
        'outer: for spec in extents {
            for i in 0..spec.pages {
                let pid = spec.start.offset(i);
                let frame = self.get_or_load_page(*spec, pid)?;
                let data = frame.data.read();
                let take = (len - buf.len()).min(p);
                buf.extend_from_slice(&data[..take]);
                self.metrics.bump_memcpy(take as u64);
                if buf.len() == len {
                    break 'outer;
                }
            }
        }
        Ok(f(&buf))
    }

    /// Read a byte range of one extent, loading only the touched pages.
    pub fn read_range(&self, spec: ExtentSpec, byte_off: usize, out: &mut [u8]) -> Result<()> {
        let p = self.geo.page_size();
        debug_assert!(byte_off + out.len() <= (spec.pages as usize) * p);
        let mut done = 0usize;
        while done < out.len() {
            let abs = byte_off + done;
            let page_idx = abs / p;
            let in_page = abs % p;
            let take = (out.len() - done).min(p - in_page);
            let frame = self.get_or_load_page(spec, spec.start.offset(page_idx as u64))?;
            let data = frame.data.read();
            out[done..done + take].copy_from_slice(&data[in_page..in_page + take]);
            self.metrics.bump_memcpy(take as u64);
            done += take;
        }
        Ok(())
    }

    /// Visit a BLOB extent by extent without materializing the whole object.
    pub fn for_each_extent<R>(
        &self,
        extents: &[ExtentSpec],
        len: u64,
        mut f: impl FnMut(&[u8]) -> Option<R>,
    ) -> Result<Option<R>> {
        let p = self.geo.page_size();
        let mut remaining = len as usize;
        for spec in extents {
            if remaining == 0 {
                break;
            }
            let ext_len = ((spec.pages as usize) * p).min(remaining);
            let mut ext_buf = Vec::with_capacity(ext_len);
            for i in 0..spec.pages {
                if ext_buf.len() == ext_len {
                    break;
                }
                let frame = self.get_or_load_page(*spec, spec.start.offset(i))?;
                let data = frame.data.read();
                let take = (ext_len - ext_buf.len()).min(p);
                ext_buf.extend_from_slice(&data[..take]);
                self.metrics.bump_memcpy(take as u64);
            }
            if let Some(r) = f(&ext_buf) {
                return Ok(Some(r));
            }
            remaining -= ext_len;
        }
        Ok(None)
    }

    /// Commit-time flush: one contiguous device write per extent (gathered
    /// from the page frames), then unpin and mark clean.
    pub fn flush_extents(&self, items: &[crate::pool::FlushItem]) -> Result<()> {
        let batch = self.flush_extents_begin(items)?;
        batch.handle.wait_done();
        let result = batch
            .handle
            .try_complete()
            // lint-allow(no-panic-in-request-path): wait_done() just blocked on this batch; try_complete is then infallible
            .expect("batch complete after wait_done");
        self.flush_extents_finish(&batch, &result);
        result
    }

    /// First half of the commit-time flush, without blocking: gather each
    /// extent's dirty pages into owned scratch buffers (the frames are
    /// scattered heap pages, not a contiguous arena) and submit one batched
    /// asynchronous write. The scratch lives in the returned batch until
    /// [`HashTablePool::flush_extents_finish`], so the page frames stay
    /// free to be written or even evicted while the I/O is in flight —
    /// which is exactly why the committer must never keep two in-flight
    /// batches touching the same extent (stale scratch could reorder).
    pub fn flush_extents_begin(&self, items: &[crate::pool::FlushItem]) -> Result<HtFlushBatch> {
        let p = self.geo.page_size();
        let mut bufs = Vec::with_capacity(items.len());
        for item in items {
            let mut scratch = vec![0u8; (item.dirty_pages as usize) * p];
            for i in 0..item.dirty_pages {
                let pid = item.spec.start.offset(item.dirty_from + i);
                if let Some(frame) = self.lookup(pid) {
                    let data = frame.data.read();
                    scratch[(i as usize) * p..(i as usize + 1) * p].copy_from_slice(&data);
                    self.metrics.bump_memcpy(p as u64);
                }
            }
            bufs.push(scratch);
        }
        let reqs: Vec<IoReq> = items
            .iter()
            .zip(bufs.iter_mut())
            .map(|(item, buf)| IoReq {
                kind: IoKind::Write,
                offset: self.geo.offset_of(item.spec.start.offset(item.dirty_from)),
                ptr: buf.as_mut_ptr(),
                len: buf.len(),
            })
            .collect();
        // SAFETY: the write sources are owned by the returned batch and
        // outlive the requests.
        let handle = unsafe { self.io.submit(reqs) };
        Ok(HtFlushBatch {
            handle,
            items: items.to_vec(),
            _bufs: bufs,
        })
    }

    /// Second half of the commit-time flush: called exactly once per batch
    /// with the reaped completion result. On success the extents' pages
    /// become clean and evictable.
    pub fn flush_extents_finish(&self, batch: &HtFlushBatch, result: &Result<()>) {
        if result.is_err() {
            return;
        }
        let p = self.geo.page_size() as u64;
        let total_pages: u64 = batch.items.iter().map(|i| i.dirty_pages).sum();
        self.metrics
            .pages_written
            .fetch_add(total_pages, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.metrics
            .bytes_written
            .fetch_add(total_pages * p, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        for item in &batch.items {
            for i in 0..item.spec.pages {
                let pid = item.spec.start.offset(i);
                if let Some(frame) = self.lookup(pid) {
                    frame.dirty.store(false, Ordering::Release); // ordering: Release; clean flags are published only after the flush write landed
                    frame.prevent_evict.store(false, Ordering::Release);
                }
                self.audit.unpin(pid.raw());
            }
        }
    }

    /// Flush every dirty page (checkpoint / shutdown).
    pub fn flush_all_dirty(&self) -> Result<()> {
        for shard in &self.shards {
            let entries: Vec<(u64, Arc<PageFrame>)> = shard
                .lock()
                .iter()
                .map(|(&pid, f)| (pid, f.clone()))
                .collect();
            for (pid, frame) in entries {
                // ordering: AcqRel; claim the dirty bit, acquiring the writer's bytes and publishing the clean state
                if frame.dirty.swap(false, Ordering::AcqRel) {
                    let data = frame.data.read();
                    self.device
                        .write_at(&data, self.geo.offset_of(Pid::new(pid)))?;
                    // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                    self.metrics.pages_written.fetch_add(1, Ordering::Relaxed);
                }
                // ordering: Release; unpin is published only after the page write above
                frame.prevent_evict.store(false, Ordering::Release);
                self.audit.unpin(pid);
            }
        }
        Ok(())
    }

    /// Drop every cached page (recovery epilogue / cold-cache runs). Dirty
    /// pages must have been flushed first.
    pub fn drop_all(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            let n = shard.len() as u64;
            shard.clear();
            // ordering: Relaxed occupancy counter; the shard mutexes ordered the clears
            let prev = self.pages.fetch_sub(n, Ordering::Relaxed);
            debug_assert!(prev >= n, "page counter underflow on drop_all");
        }
    }

    /// Clear `prevent_evict` on an extent's pages without flushing.
    pub fn unpin_extent(&self, spec: ExtentSpec) {
        for i in 0..spec.pages {
            let pid = spec.start.offset(i);
            if let Some(frame) = self.lookup(pid) {
                // ordering: Release; unpin on abort-cleanup, pairs with the evictor's Acquire
                frame.prevent_evict.store(false, Ordering::Release);
            }
            self.audit.unpin(pid.raw());
        }
    }

    /// Discard an extent's pages without writing them back.
    pub fn drop_extent(&self, spec: ExtentSpec) {
        for i in 0..spec.pages {
            let pid = spec.start.offset(i);
            if self.shard(pid).lock().remove(&pid.raw()).is_some() {
                // ordering: Relaxed occupancy counter; the shard mutex ordered the remove
                let prev = self.pages.fetch_sub(1, Ordering::Relaxed);
                debug_assert!(prev > 0, "page counter underflow on drop_extent");
            }
            // Rollback may drop pages that are still pinned.
            self.audit.unpin(pid.raw());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_storage::MemDevice;

    fn pool(max_pages: u64) -> (Arc<HashTablePool>, Arc<dyn Device>) {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(4 << 20));
        let m = lobster_metrics::new_metrics();
        (
            HashTablePool::new(dev.clone(), Geometry::new(4096), max_pages, m),
            dev,
        )
    }

    #[test]
    fn fill_flush_read_roundtrip() {
        let (p, _dev) = pool(64);
        let spec = ExtentSpec::new(Pid::new(10), 3);
        let data: Vec<u8> = (0..3 * 4096).map(|i| (i % 256) as u8).collect();
        p.fill_extent(spec, &data).unwrap();
        p.flush_extents(&[crate::pool::FlushItem::whole(spec)])
            .unwrap();
        p.drop_extent(spec);
        // Reload from device.
        let out = p
            .read_blob(&[spec], data.len() as u64, |b| b.to_vec())
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn eviction_respects_budget_and_pins() {
        let (p, _dev) = pool(8);
        for e in 0..4u64 {
            let spec = ExtentSpec::new(Pid::new(e * 4), 4);
            p.fill_extent(spec, &vec![e as u8; 4 * 4096]).unwrap();
            // Unpin so eviction can work.
            p.flush_extents(&[crate::pool::FlushItem::whole(spec)])
                .unwrap();
        }
        assert!(
            p.pages_in_use() <= 9,
            "pool must stay near its budget, got {}",
            p.pages_in_use()
        );
    }

    #[test]
    fn partial_overwrite_with_load() {
        let (p, _dev) = pool(64);
        let spec = ExtentSpec::new(Pid::new(0), 2);
        p.fill_extent(spec, &vec![7u8; 8192]).unwrap();
        p.flush_extents(&[crate::pool::FlushItem::whole(spec)])
            .unwrap();
        p.drop_extent(spec);
        // Overwrite bytes 100..300 after reload.
        p.write_range(spec, 100, &[9u8; 200], true).unwrap();
        let out = p.read_blob(&[spec], 8192, |b| b.to_vec()).unwrap();
        assert_eq!(&out[..100], &vec![7u8; 100][..]);
        assert_eq!(&out[100..300], &vec![9u8; 200][..]);
        assert_eq!(&out[300..], &vec![7u8; 8192 - 300][..]);
    }

    #[test]
    fn per_page_translations_counted() {
        let (p, _dev) = pool(64);
        let m = p.metrics().clone();
        let spec = ExtentSpec::new(Pid::new(0), 8);
        p.fill_extent(spec, &vec![1u8; 8 * 4096]).unwrap();
        let before = m.snapshot().translations;
        p.read_blob(&[spec], 8 * 4096, |_| ()).unwrap();
        let delta = m.snapshot().translations - before;
        assert!(
            delta >= 8,
            "hash-table pool must translate per page, got {delta}"
        );
    }
}
