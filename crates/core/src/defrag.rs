//! Background maintenance: online defragmentation + cold-data scrub.
//!
//! Long create/delete/append churn ages the extent space two ways
//! ("Fragmentation in Large Object Repositories"): free space shatters
//! into runs too small for large tier requests, and blob placements
//! scatter across discontiguous extent runs. Neither heals by itself —
//! the exact-size free lists recycle fixed sizes in O(1) but never merge
//! neighbours. The [`Defragmenter`] repairs both out-of-band:
//!
//! 1. **Geometry pass** — coalesce adjacent free ranges (and absorb a
//!    run ending at the bump pointer back into the never-allocated
//!    region), then publish the free-run fragmentation score as a gauge.
//! 2. **Relocation pass** — when the score crosses the configured
//!    threshold, pick the blobs with the most discontiguous extent runs
//!    and move each to a fresh placement via [`Txn::relocate_blob`]:
//!    exclusive key lock, non-evicting copy that re-hashes every byte
//!    (the piggybacked scrub), WAL `BlobRelocate` record, atomic Blob
//!    State swap, old extents quarantine-fenced until the durability
//!    frontier frees them. Because the pass coalesces *first*, the new
//!    placements carve contiguous runs instead of recycling shards.
//! 3. **Scrub pass** — independently of relocation, re-hash a bounded
//!    batch of idle blobs per pass against their Blob State SHA-256
//!    (round-robin cursor), feeding failures into the same
//!    verify-on-read → quarantine degradation ladder.
//!
//! This module is the *only* place outside the transaction layer allowed
//! to touch raw allocator fences and buffer leases; the RAII guards here
//! ([`FenceGuard`], [`SourceGuard`]) pair every acquire with a release,
//! and `lobster-lint`'s guard-discipline rules keep the raw calls banned
//! everywhere else.

use crate::catalog::{Relation, RelationKind};
use crate::db::Database;
use lobster_buffer::BlobPool;
use lobster_extent::{ExtentAllocator, ExtentSpec};
use lobster_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use lobster_sync::thread::JoinHandle;
use lobster_sync::{thread, Arc, Condvar, Mutex};
use lobster_types::Result;
use std::time::Duration;

/// Knobs for the background maintenance loop. Documented for operators
/// in EXPERIMENTS.md ("Aging and the defragmenter").
#[derive(Clone, Debug)]
pub struct DefragConfig {
    /// Sleep between maintenance passes.
    pub interval: Duration,
    /// Relocate only while the allocator's free-run fragmentation score
    /// is at least this (0 ⇒ always; 1.0 ⇒ never). The geometry pass
    /// (coalesce + gauge) runs regardless.
    pub min_score: f64,
    /// Upper bound on blob relocations per pass per shard.
    pub batch_blobs: usize,
    /// Idle blobs re-hashed per pass per shard by the standalone scrub
    /// (0 disables scrubbing; relocations still verify what they move).
    pub scrub_batch: usize,
}

impl Default for DefragConfig {
    fn default() -> Self {
        DefragConfig {
            interval: Duration::from_millis(200),
            min_score: 0.01,
            batch_blobs: 8,
            scrub_batch: 2,
        }
    }
}

/// What one [`defrag_pass`] did; summed across passes by the background
/// loop and inspectable in tests/benches.
#[derive(Clone, Copy, Debug, Default)]
pub struct DefragPassReport {
    /// Free-run merges performed by the geometry pass.
    pub merges: usize,
    /// Fragmentation score after coalescing, before relocations.
    pub score: f64,
    /// Blobs successfully moved to a fresh placement.
    pub relocated: usize,
    /// Candidates skipped (vanished, inline, quarantined).
    pub skipped: usize,
    /// Relocations that failed (lock timeout, scrub mismatch, alloc).
    pub errors: usize,
}

/// Lift-on-drop pairing for the allocator quarantine fence. Arm it over
/// the old placement before publishing a Blob State swap; on success
/// [`FenceGuard::disarm`] hands the still-fenced extents to the commit
/// batch (released + freed at the durability frontier), on any earlier
/// failure `Drop` lifts the fences so the untouched old placement stays
/// allocatable-around rather than leaking.
pub(crate) struct FenceGuard<'a> {
    alloc: &'a ExtentAllocator,
    specs: Vec<ExtentSpec>,
    armed: bool,
}

impl<'a> FenceGuard<'a> {
    pub(crate) fn new(alloc: &'a ExtentAllocator, specs: Vec<ExtentSpec>) -> Self {
        for spec in &specs {
            alloc.quarantine_extent(*spec);
        }
        FenceGuard {
            alloc,
            specs,
            armed: true,
        }
    }

    /// Keep the fences up and return the fenced extents; the caller now
    /// owns the release (normally `CommitBatch::refenced` → retire).
    pub(crate) fn disarm(mut self) -> Vec<ExtentSpec> {
        self.armed = false;
        std::mem::take(&mut self.specs)
    }
}

impl Drop for FenceGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            for spec in &self.specs {
                self.alloc.release_quarantine(*spec);
            }
        }
    }
}

/// Unlease-on-drop pairing for relocation source reads: leases the
/// source extents that are *already resident* (stable frame reads for
/// the copy, no thrash) and leaves cold ones on the device, where
/// `read_range_uncached` serves them without faulting anything in.
pub(crate) struct SourceGuard<'a> {
    pool: &'a BlobPool,
    leased: Vec<ExtentSpec>,
}

impl<'a> SourceGuard<'a> {
    pub(crate) fn new(pool: &'a BlobPool, specs: &[ExtentSpec]) -> Self {
        let mut leased = Vec::new();
        for spec in specs {
            if pool.try_lease_resident(*spec).unwrap_or(false) {
                leased.push(*spec);
            }
        }
        SourceGuard { pool, leased }
    }
}

impl Drop for SourceGuard<'_> {
    fn drop(&mut self) {
        for spec in &self.leased {
            self.pool.unlease_extent(*spec);
        }
    }
}

/// Number of discontiguous pid runs in a blob's placement: adjacent
/// extents (`next.start == prev.start + prev.pages`) form one run. A
/// freshly bump-allocated blob scores 1; churn-scattered placements
/// score up to the extent count.
pub(crate) fn extent_runs(specs: &[ExtentSpec]) -> usize {
    let mut runs = 0usize;
    let mut prev_end: Option<u64> = None;
    for spec in specs {
        if prev_end != Some(spec.start.raw()) {
            runs += 1;
        }
        prev_end = Some(spec.start.raw() + spec.pages);
    }
    runs
}

/// One maintenance pass over a single shard: coalesce free space,
/// publish the fragmentation gauge, and relocate up to
/// `cfg.batch_blobs` of the most-scattered blobs.
pub fn defrag_pass(db: &Arc<Database>, cfg: &DefragConfig) -> Result<DefragPassReport> {
    // Coalesce first: relocation targets then carve contiguous runs out
    // of the merged space instead of recycling same-size shards.
    let mut rep = DefragPassReport {
        merges: db.alloc.coalesce_free_space(),
        score: db.alloc.fragmentation_score(),
        ..Default::default()
    };
    // ordering: relaxed metrics counters; snapshot readers tolerate staleness
    db.metrics.defrag_passes.fetch_add(1, Ordering::Relaxed);
    db.metrics
        .fragmentation_score_milli
        // ordering: relaxed gauge; snapshot readers tolerate staleness
        .store((rep.score * 1000.0) as u64, Ordering::Relaxed);
    if rep.score < cfg.min_score || cfg.batch_blobs == 0 {
        return Ok(rep);
    }

    // Candidate scan: most-scattered first, smallest first among ties
    // (cheapest moves reclaim the most contiguity per byte copied).
    let mut candidates: Vec<(Arc<Relation>, Vec<u8>, usize, u64)> = Vec::new();
    for rel in db.registry.read().all() {
        if rel.kind != RelationKind::Blob {
            continue;
        }
        rel.tree.for_each(|k, v| {
            if let Ok(state) = crate::BlobState::decode(v) {
                let specs = state.extent_specs(&db.table);
                let runs = extent_runs(&specs);
                if runs > 1 && !db.is_blob_quarantined(&rel.name, k) {
                    candidates.push((rel.clone(), k.to_vec(), runs, state.size));
                }
            }
            true
        })?;
    }
    candidates.sort_by(|a, b| b.2.cmp(&a.2).then(a.3.cmp(&b.3)));
    candidates.truncate(cfg.batch_blobs);

    for (rel, key, _, _) in candidates {
        let mut txn = db.begin();
        match txn.relocate_blob(&rel, &key) {
            Ok(true) => match txn.commit() {
                Ok(()) => rep.relocated += 1,
                Err(_) => rep.errors += 1,
            },
            Ok(false) => {
                rep.skipped += 1;
                // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                db.metrics.defrag_skipped.fetch_add(1, Ordering::Relaxed);
                txn.abort();
            }
            Err(_) => {
                // Lock timeout (blob is hot — leave it alone) or a scrub
                // mismatch (relocate_blob already quarantined it).
                rep.errors += 1;
                // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                db.metrics.defrag_skipped.fetch_add(1, Ordering::Relaxed);
                txn.abort();
            }
        }
    }
    // The holes the relocations just opened merge on the next pass's
    // leading coalesce; refresh the gauge now so timelines track the
    // post-batch state.
    db.metrics.fragmentation_score_milli.store(
        (db.alloc.fragmentation_score() * 1000.0) as u64,
        // ordering: relaxed gauge; snapshot readers tolerate staleness
        Ordering::Relaxed,
    );
    Ok(rep)
}

/// Round-robin position of the standalone scrub within one shard.
#[derive(Clone, Debug, Default)]
pub struct ScrubCursor {
    rel: String,
    key: Vec<u8>,
}

/// Re-hash up to `batch` idle blobs after the cursor (wrapping at the
/// end) against their Blob State SHA-256; failures feed the quarantine
/// degradation ladder. Returns the number of blobs checked.
pub fn scrub_pass(db: &Arc<Database>, cursor: &mut ScrubCursor, batch: usize) -> Result<usize> {
    if batch == 0 {
        return Ok(0);
    }
    let mut rels: Vec<Arc<Relation>> = db
        .registry
        .read()
        .all()
        .into_iter()
        .filter(|r| r.kind == RelationKind::Blob)
        .collect();
    rels.sort_by(|a, b| a.name.cmp(&b.name));
    if rels.is_empty() {
        return Ok(0);
    }
    let first = rels.iter().position(|r| r.name >= cursor.rel).unwrap_or(0);
    let mut checked = 0usize;
    // One wrap-around sweep at most: visit each relation once, starting
    // at the cursor's relation and key.
    for i in 0..rels.len() {
        let rel = &rels[(first + i) % rels.len()];
        let from = if i == 0 && rel.name == cursor.rel {
            cursor.key.clone()
        } else {
            Vec::new()
        };
        let mut keys: Vec<Vec<u8>> = Vec::new();
        rel.tree.scan_from(&from, |k, _| {
            if k > from.as_slice() || from.is_empty() {
                keys.push(k.to_vec());
            }
            keys.len() < batch - checked
        })?;
        for key in keys {
            let mut txn = db.begin();
            let _ = txn.scrub_blob(rel, &key);
            txn.abort();
            checked += 1;
            cursor.rel = rel.name.clone();
            cursor.key = key;
        }
        if checked >= batch {
            return Ok(checked);
        }
        // This relation is exhausted; the next one starts from the top.
        cursor.rel = rel.name.clone();
        cursor.key = Vec::new();
    }
    // Full wrap: restart from the beginning next pass.
    *cursor = ScrubCursor::default();
    Ok(checked)
}

struct Shared {
    stop: AtomicBool,
    paused: AtomicBool,
    passes: AtomicU64,
    mu: Mutex<()>,
    cv: Condvar,
}

/// Background maintenance thread over one engine's shards: runs
/// [`defrag_pass`] + [`scrub_pass`] on every shard each interval.
/// Pause/resume gate the work without killing the thread (the serve
/// front end flips them around checkpoints and on SIGTERM);
/// [`Defragmenter::stop`] drains — the in-flight pass finishes, its
/// relocation batch commits or aborts cleanly, then the thread joins.
pub struct Defragmenter {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl Defragmenter {
    /// Spawn the maintenance loop over `dbs` (one entry per shard).
    pub fn start(dbs: Vec<Arc<Database>>, cfg: DefragConfig) -> Defragmenter {
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            passes: AtomicU64::new(0),
            mu: Mutex::new(()),
            cv: Condvar::new(),
        });
        let s = shared.clone();
        let handle = thread::Builder::new()
            .name("lobster-defrag".into())
            .spawn(move || {
                let mut cursors = vec![ScrubCursor::default(); dbs.len()];
                loop {
                    {
                        let mut g = s.mu.lock();
                        // ordering: Acquire; pairs with stop/pause Release stores
                        if !s.stop.load(Ordering::Acquire) {
                            s.cv.wait_for(&mut g, cfg.interval);
                        }
                    }
                    // ordering: Acquire; pairs with stop()'s Release store
                    if s.stop.load(Ordering::Acquire) {
                        return;
                    }
                    // ordering: Acquire; pairs with pause()'s Release store
                    if s.paused.load(Ordering::Acquire) {
                        continue;
                    }
                    for (db, cursor) in dbs.iter().zip(cursors.iter_mut()) {
                        // Maintenance must never take the engine down:
                        // pass errors (e.g. allocator pressure) are
                        // dropped and retried next interval.
                        let _ = defrag_pass(db, &cfg);
                        let _ = scrub_pass(db, cursor, cfg.scrub_batch);
                    }
                    // ordering: Release; pairs with Acquire in passes()
                    s.passes.fetch_add(1, Ordering::Release);
                }
            })
            .expect("spawn defrag thread");
        Defragmenter {
            shared,
            handle: Some(handle),
        }
    }

    /// Completed maintenance rounds (all shards) since start.
    pub fn passes(&self) -> u64 {
        // ordering: Acquire; pairs with the loop's Release increment
        self.shared.passes.load(Ordering::Acquire)
    }

    /// Skip passes until [`Defragmenter::resume`]; the in-flight pass
    /// (if any) still completes.
    pub fn pause(&self) {
        // ordering: Release; pairs with the loop's Acquire load
        self.shared.paused.store(true, Ordering::Release);
    }

    pub fn resume(&self) {
        // ordering: Release; pairs with the loop's Acquire load
        self.shared.paused.store(false, Ordering::Release);
    }

    /// Drain and join: the pass in flight finishes (its relocation
    /// batch commits or aborts — never torn), no new pass starts.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        // ordering: Release; pairs with the loop's Acquire load
        self.shared.stop.store(true, Ordering::Release);
        let _g = self.shared.mu.lock();
        self.shared.cv.notify_all();
        drop(_g);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Defragmenter {
    fn drop(&mut self) {
        self.shutdown();
    }
}
