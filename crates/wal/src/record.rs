//! Log-record model and serialization.
//!
//! The decisive design point of the paper (§III-C): in the default
//! *asynchronous BLOB logging* mode the WAL carries only the **Blob State**
//! (a few hundred bytes), never BLOB content. Content reaches the device
//! exactly once, directly from the buffer frames at commit. The
//! [`LogRecord::BlobChunk`] variant exists solely for the `Our.physlog`
//! baseline, which logs full content like conventional engines.

use lobster_types::{crc32, read_u32, read_u64, Error, Result};

/// Identifier of a relation (table/index) in the catalog.
pub type RelationId = u32;

/// A single write-ahead-log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// Transaction begins (recovery uses commit records only; begin records
    /// aid debugging and log analytics).
    TxnBegin { txn: u64 },
    /// Transaction commits; everything logged for `txn` becomes effective.
    TxnCommit { txn: u64 },
    /// Transaction aborted after logging records.
    TxnAbort { txn: u64 },
    /// A key/value insert into a relation (catalog entries, metadata rows,
    /// and Blob State rows — `value` is the serialized Blob State).
    Insert {
        txn: u64,
        relation: RelationId,
        key: Vec<u8>,
        value: Vec<u8>,
    },
    /// Update of an existing key; carries before and after images so
    /// recovery can redo or undo logically.
    Update {
        txn: u64,
        relation: RelationId,
        key: Vec<u8>,
        old_value: Vec<u8>,
        new_value: Vec<u8>,
    },
    /// Deletion of a key; the before image allows undo.
    Delete {
        txn: u64,
        relation: RelationId,
        key: Vec<u8>,
        old_value: Vec<u8>,
    },
    /// Delta update of BLOB content updated in place (§III-D "Updating a
    /// BLOB", scheme 1): byte range and before/after images.
    BlobDelta {
        txn: u64,
        relation: RelationId,
        key: Vec<u8>,
        byte_offset: u64,
        before: Vec<u8>,
        after: Vec<u8>,
    },
    /// Full BLOB content segment — used **only** by the physical-logging
    /// baseline (`Our.physlog`); the default engine never emits this.
    BlobChunk {
        txn: u64,
        relation: RelationId,
        key: Vec<u8>,
        byte_offset: u64,
        data: Vec<u8>,
    },
    /// Online relocation of a BLOB's extents by the defragmenter: the
    /// content is byte-identical (same size, same SHA-256), only the
    /// placement — the Blob State's extent pid array — changes. Carries
    /// before and after Blob State images like [`LogRecord::Update`], so
    /// recovery can redo the swap (install the new placement) or undo it
    /// (the old placement stays the single readable truth). Kept distinct
    /// from `Update` so recovery and log analytics can tell maintenance
    /// traffic from user writes.
    BlobRelocate {
        txn: u64,
        relation: RelationId,
        key: Vec<u8>,
        old_value: Vec<u8>,
        new_value: Vec<u8>,
    },
    /// Commit marker for one shard's slice of a cross-shard (global)
    /// transaction. `gtxn` is the global transaction id, `shard` the index
    /// of the shard this log stream belongs to, and `mask` the bitmask of
    /// all participating shards. Recovery treats the local transaction as
    /// committed only if the configured cross-commit policy decides the
    /// global transaction durable — i.e. a marker for `gtxn` survived in
    /// *every* shard named by `mask`.
    TxnCrossCommit {
        txn: u64,
        gtxn: u64,
        shard: u32,
        mask: u64,
    },
    /// Checkpoint marker: everything before it is durable in the database.
    Checkpoint,
    /// Full image of a page, journaled before a checkpoint writes it in
    /// place: a crash mid-checkpoint replays the images first, restoring a
    /// consistent tree (the classic full-page-image / double-write fix for
    /// torn checkpoint writes).
    PageImage { pid: u64, data: Vec<u8> },
}

impl LogRecord {
    pub fn txn(&self) -> Option<u64> {
        match self {
            LogRecord::TxnBegin { txn }
            | LogRecord::TxnCommit { txn }
            | LogRecord::TxnAbort { txn }
            | LogRecord::Insert { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::BlobDelta { txn, .. }
            | LogRecord::BlobChunk { txn, .. }
            | LogRecord::BlobRelocate { txn, .. }
            | LogRecord::TxnCrossCommit { txn, .. } => Some(*txn),
            LogRecord::Checkpoint | LogRecord::PageImage { .. } => None,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            LogRecord::TxnBegin { .. } => 1,
            LogRecord::TxnCommit { .. } => 2,
            LogRecord::TxnAbort { .. } => 3,
            LogRecord::Insert { .. } => 4,
            LogRecord::Update { .. } => 5,
            LogRecord::Delete { .. } => 6,
            LogRecord::BlobDelta { .. } => 7,
            LogRecord::BlobChunk { .. } => 8,
            LogRecord::Checkpoint => 9,
            LogRecord::PageImage { .. } => 10,
            LogRecord::TxnCrossCommit { .. } => 11,
            LogRecord::BlobRelocate { .. } => 12,
        }
    }

    /// Serialize the payload (without framing).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        match self {
            LogRecord::TxnBegin { txn }
            | LogRecord::TxnCommit { txn }
            | LogRecord::TxnAbort { txn } => {
                out.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::Insert {
                txn,
                relation,
                key,
                value,
            } => {
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&relation.to_le_bytes());
                put_bytes(out, key);
                put_bytes(out, value);
            }
            LogRecord::Update {
                txn,
                relation,
                key,
                old_value,
                new_value,
            }
            | LogRecord::BlobRelocate {
                txn,
                relation,
                key,
                old_value,
                new_value,
            } => {
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&relation.to_le_bytes());
                put_bytes(out, key);
                put_bytes(out, old_value);
                put_bytes(out, new_value);
            }
            LogRecord::Delete {
                txn,
                relation,
                key,
                old_value,
            } => {
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&relation.to_le_bytes());
                put_bytes(out, key);
                put_bytes(out, old_value);
            }
            LogRecord::BlobDelta {
                txn,
                relation,
                key,
                byte_offset,
                before,
                after,
            } => {
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&relation.to_le_bytes());
                put_bytes(out, key);
                out.extend_from_slice(&byte_offset.to_le_bytes());
                put_bytes(out, before);
                put_bytes(out, after);
            }
            LogRecord::BlobChunk {
                txn,
                relation,
                key,
                byte_offset,
                data,
            } => {
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&relation.to_le_bytes());
                put_bytes(out, key);
                out.extend_from_slice(&byte_offset.to_le_bytes());
                put_bytes(out, data);
            }
            LogRecord::Checkpoint => {}
            LogRecord::PageImage { pid, data } => {
                out.extend_from_slice(&pid.to_le_bytes());
                put_bytes(out, data);
            }
            LogRecord::TxnCrossCommit {
                txn,
                gtxn,
                shard,
                mask,
            } => {
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&gtxn.to_le_bytes());
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&mask.to_le_bytes());
            }
        }
    }

    /// Deserialize a payload produced by [`LogRecord::encode`].
    pub fn decode(buf: &[u8]) -> Result<LogRecord> {
        let mut c = Cursor { buf, pos: 0 };
        let tag = c.u8()?;
        let rec = match tag {
            1 => LogRecord::TxnBegin { txn: c.u64()? },
            2 => LogRecord::TxnCommit { txn: c.u64()? },
            3 => LogRecord::TxnAbort { txn: c.u64()? },
            4 => LogRecord::Insert {
                txn: c.u64()?,
                relation: c.u32()?,
                key: c.bytes()?,
                value: c.bytes()?,
            },
            5 => LogRecord::Update {
                txn: c.u64()?,
                relation: c.u32()?,
                key: c.bytes()?,
                old_value: c.bytes()?,
                new_value: c.bytes()?,
            },
            6 => LogRecord::Delete {
                txn: c.u64()?,
                relation: c.u32()?,
                key: c.bytes()?,
                old_value: c.bytes()?,
            },
            7 => LogRecord::BlobDelta {
                txn: c.u64()?,
                relation: c.u32()?,
                key: c.bytes()?,
                byte_offset: c.u64()?,
                before: c.bytes()?,
                after: c.bytes()?,
            },
            8 => LogRecord::BlobChunk {
                txn: c.u64()?,
                relation: c.u32()?,
                key: c.bytes()?,
                byte_offset: c.u64()?,
                data: c.bytes()?,
            },
            9 => LogRecord::Checkpoint,
            10 => LogRecord::PageImage {
                pid: c.u64()?,
                data: c.bytes()?,
            },
            11 => LogRecord::TxnCrossCommit {
                txn: c.u64()?,
                gtxn: c.u64()?,
                shard: c.u32()?,
                mask: c.u64()?,
            },
            12 => LogRecord::BlobRelocate {
                txn: c.u64()?,
                relation: c.u32()?,
                key: c.bytes()?,
                old_value: c.bytes()?,
                new_value: c.bytes()?,
            },
            t => {
                return Err(Error::Corruption(format!("unknown log record tag {t}")));
            }
        };
        if c.pos != buf.len() {
            return Err(Error::Corruption(format!(
                "trailing {} bytes after log record",
                buf.len() - c.pos
            )));
        }
        Ok(rec)
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn need(&self, n: usize) -> Result<()> {
        if self.pos + n > self.buf.len() {
            Err(Error::Corruption("truncated log record".into()))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32> {
        self.need(4)?;
        let v = read_u32(&self.buf[self.pos..]);
        self.pos += 4;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64> {
        self.need(8)?;
        let v = read_u64(&self.buf[self.pos..]);
        self.pos += 8;
        Ok(v)
    }

    fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        self.need(len)?;
        let v = self.buf[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(v)
    }
}

// -------------------------------------------------------------- framing ---

/// On-log frame: `[len: u32][crc: u32][epoch: u32][payload: len bytes]`.
pub const FRAME_HEADER: usize = 12;

/// Append a framed record to `out`.
pub fn frame_record(out: &mut Vec<u8>, epoch: u32, rec: &LogRecord) {
    let start = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER]);
    rec.encode(out);
    let payload_len = out.len() - start - FRAME_HEADER;
    let crc = crc32(&out[start + FRAME_HEADER..]);
    out[start..start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    out[start + 8..start + 12].copy_from_slice(&epoch.to_le_bytes());
}

/// Parse one frame from `buf`; returns `(record, frame_len)` or `None` at
/// end-of-log (zero length, wrong epoch, bad CRC, or truncation — all are
/// treated as the end of the valid log, as in ARIES-style scans).
pub fn parse_frame(buf: &[u8], epoch: u32) -> Option<(LogRecord, usize)> {
    if buf.len() < FRAME_HEADER {
        return None;
    }
    let len = read_u32(buf) as usize;
    if len == 0 || FRAME_HEADER + len > buf.len() {
        return None;
    }
    let crc = read_u32(&buf[4..]);
    let rec_epoch = read_u32(&buf[8..]);
    if rec_epoch != epoch {
        return None;
    }
    let payload = &buf[FRAME_HEADER..FRAME_HEADER + len];
    if crc32(payload) != crc {
        return None;
    }
    LogRecord::decode(payload)
        .ok()
        .map(|r| (r, FRAME_HEADER + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<LogRecord> {
        vec![
            LogRecord::TxnBegin { txn: 7 },
            LogRecord::TxnCommit { txn: 7 },
            LogRecord::TxnAbort { txn: 8 },
            LogRecord::Insert {
                txn: 7,
                relation: 3,
                key: b"key".to_vec(),
                value: vec![1, 2, 3, 4],
            },
            LogRecord::Update {
                txn: 7,
                relation: 3,
                key: b"k".to_vec(),
                old_value: vec![1],
                new_value: vec![2, 3],
            },
            LogRecord::Delete {
                txn: 9,
                relation: 1,
                key: vec![],
                old_value: vec![5; 100],
            },
            LogRecord::BlobDelta {
                txn: 1,
                relation: 2,
                key: b"blob".to_vec(),
                byte_offset: 4096,
                before: vec![0; 16],
                after: vec![1; 16],
            },
            LogRecord::BlobChunk {
                txn: 1,
                relation: 2,
                key: b"blob".to_vec(),
                byte_offset: 0,
                data: vec![9; 1000],
            },
            LogRecord::Checkpoint,
            LogRecord::PageImage {
                pid: 17,
                data: vec![3; 4096],
            },
            LogRecord::TxnCrossCommit {
                txn: 12,
                gtxn: 0x8000_0000_0000_0003,
                shard: 2,
                mask: 0b1101,
            },
            LogRecord::BlobRelocate {
                txn: 13,
                relation: 2,
                key: b"moved".to_vec(),
                old_value: vec![4; 120],
                new_value: vec![7; 120],
            },
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for rec in samples() {
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            assert_eq!(LogRecord::decode(&buf).unwrap(), rec);
        }
    }

    #[test]
    fn framing_roundtrip_sequence() {
        let mut log = Vec::new();
        for rec in samples() {
            frame_record(&mut log, 5, &rec);
        }
        let mut pos = 0;
        let mut seen = Vec::new();
        while let Some((rec, n)) = parse_frame(&log[pos..], 5) {
            seen.push(rec);
            pos += n;
        }
        assert_eq!(seen, samples());
        assert_eq!(pos, log.len());
    }

    #[test]
    fn wrong_epoch_terminates_scan() {
        let mut log = Vec::new();
        frame_record(&mut log, 1, &LogRecord::Checkpoint);
        assert!(parse_frame(&log, 2).is_none());
    }

    #[test]
    fn corruption_terminates_scan() {
        let mut log = Vec::new();
        frame_record(&mut log, 1, &LogRecord::TxnCommit { txn: 42 });
        log[FRAME_HEADER + 2] ^= 0xFF;
        assert!(parse_frame(&log, 1).is_none());
    }

    #[test]
    fn truncated_frame_is_end_of_log() {
        let mut log = Vec::new();
        frame_record(&mut log, 1, &LogRecord::TxnCommit { txn: 42 });
        let cut = log.len() - 3;
        assert!(parse_frame(&log[..cut], 1).is_none());
    }

    #[test]
    fn txn_accessor() {
        assert_eq!(LogRecord::TxnCommit { txn: 3 }.txn(), Some(3));
        assert_eq!(LogRecord::Checkpoint.txn(), None);
    }
}
