//! Figure 5: YCSB with normal payload size (120 B), 50 % reads,
//! single-threaded.
//!
//! Paper shape: all file systems and SQLite beat PostgreSQL and MySQL
//! (which pay socket + serialization per statement); **Our ≥ 3.5× everyone
//! else** because a point operation is a pure in-process B-Tree op with no
//! kernel crossing at all.

use crate::*;
use lobster_baselines::LobsterMode;

pub(crate) fn run(report: &mut Report) {
    banner(
        "Figure 5 — YCSB, 120 B payloads, 50% reads",
        "§V-B Figure 5",
    );
    let records = scaled(20_000) as u64;
    // Floored so smoke-scale runs still time a stable window (see fig9).
    let ops = scaled(60_000).max(5000);

    let systems = vec![
        sys_our(LobsterMode::Rows),
        sys_fs(lobster_baselines::FsProfile::ext4_ordered),
        sys_fs(lobster_baselines::FsProfile::ext4_journal),
        sys_fs(lobster_baselines::FsProfile::xfs),
        sys_fs(lobster_baselines::FsProfile::f2fs),
        sys_sqlite(),
        sys_postgres(),
        sys_mysql(),
    ];

    let mut table = Table::new(&["system", "txn/s", "syscalls/txn", "memcpy/txn"]);
    let mut our_rate = 0.0;
    let mut best_other = 0.0f64;
    for spec in systems {
        let store = (spec.build)();
        let mut gen = YcsbGenerator::new(YcsbConfig {
            records,
            read_ratio: 0.5,
            payload: PayloadDist::Fixed(120),
            zipf_theta: 0.99,
            seed: 42,
        });
        load_ycsb(store.as_ref(), &mut gen).expect("load");
        let before = store.stats().metrics;
        let run = run_ycsb(store.as_ref(), &mut gen, ops).expect("run");
        let delta = store.stats().metrics - before;
        let rate = run.throughput();
        if spec.name == "Our" {
            our_rate = rate;
        } else {
            best_other = best_other.max(rate);
        }
        let result = RunResult {
            system: spec.name.to_string(),
            ops: run.ops,
            elapsed: run.elapsed,
            stats: store.stats(),
            note: String::new(),
            latency: run.summary(),
            counters: delta,
        };
        report.push(
            Entry::throughput(&result.system, rate)
                .param("payload", "120B")
                .param("read_ratio", "0.5")
                .latency("op", result.latency)
                .counters(delta),
        );
        table.row(&[
            spec.name.to_string(),
            fmt_rate(rate),
            format!("{:.1}", delta.syscalls as f64 / run.ops as f64),
            fmt_bytes(delta.memcpy_bytes as f64 / run.ops as f64),
        ]);
    }
    table.print();
    let ratio = our_rate / best_other.max(1e-9);
    println!("\nOur vs best competitor: {ratio:.1}x (paper: ≥3.5x)");
    report.push(Entry::new("Our", "speedup_vs_best", "x", ratio, true));
}
