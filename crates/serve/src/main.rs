//! The `lobster-serve` binary: boot a (sharded) LOBSTER engine and serve
//! it over TCP.
//!
//! ```text
//! lobster-serve [--addr HOST:PORT] [--shards N] [--workers N]
//!               [--data DIR]        persist to DIR/{data,wal}-sK.lob
//!               [--capacity-mb MB]  per-shard data capacity (default 1024)
//!               [--pool-mb MB]      per-shard buffer pool (default 256)
//!               [--max-conns N] [--chunk-kb N] [--gate-mb N]
//!               [--no-defrag]       disable background maintenance
//!               [--defrag-interval-ms N]
//! ```
//!
//! Without `--data` the engine runs on in-memory devices (benchmarks,
//! smoke tests). A background defragmenter + scrubber runs per shard
//! unless `--no-defrag` is given. SIGTERM or ctrl-c triggers a graceful
//! drain: the maintenance loop quiesces first (its in-flight relocation
//! batch commits or aborts, never half-lands), then in-flight requests
//! finish, the group committers quiesce (surfacing any sticky commit
//! errors), and the process exits 0.

use lobster_buffer::AliasConfig;
use lobster_core::{
    Config, DefragConfig, Defragmenter, PoolVariant, RelationKind, ShardDevices, ShardedDatabase,
    ShardedRelation,
};
use lobster_serve::{ServeConfig, Server};
use lobster_storage::{Device, FileDevice, MemDevice};
use lobster_sync::Arc;
// lint-allow(sync-facade): a signal-handler static needs const init and
// async-signal-safety; the loom shim's atomics are neither, and nothing
// model-checks the process signal plumbing.
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the signal handler; polled by the main loop. `libc::signal`
/// handlers may only do async-signal-safe work — a single atomic store.
static SIG_SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: libc::c_int) {
    SIG_SHUTDOWN.store(true, Ordering::SeqCst);
}

struct Args {
    addr: String,
    shards: usize,
    workers: usize,
    data: Option<String>,
    capacity_mb: u64,
    pool_mb: u64,
    max_conns: usize,
    chunk_kb: usize,
    gate_mb: u64,
    defrag: bool,
    defrag_interval_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        shards: 4,
        workers: 4,
        data: None,
        capacity_mb: 1024,
        pool_mb: 256,
        max_conns: 256,
        chunk_kb: 256,
        gate_mb: 0, // 0 = derive from pool size
        defrag: true,
        defrag_interval_ms: 200,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => args.addr = val("--addr")?,
            "--shards" => args.shards = val("--shards")?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => args.workers = val("--workers")?.parse().map_err(|e| format!("{e}"))?,
            "--data" => args.data = Some(val("--data")?),
            "--capacity-mb" => {
                args.capacity_mb = val("--capacity-mb")?.parse().map_err(|e| format!("{e}"))?
            }
            "--pool-mb" => args.pool_mb = val("--pool-mb")?.parse().map_err(|e| format!("{e}"))?,
            "--max-conns" => {
                args.max_conns = val("--max-conns")?.parse().map_err(|e| format!("{e}"))?
            }
            "--chunk-kb" => {
                args.chunk_kb = val("--chunk-kb")?.parse().map_err(|e| format!("{e}"))?
            }
            "--gate-mb" => args.gate_mb = val("--gate-mb")?.parse().map_err(|e| format!("{e}"))?,
            "--defrag" => args.defrag = true,
            "--no-defrag" => args.defrag = false,
            "--defrag-interval-ms" => {
                args.defrag_interval_ms = val("--defrag-interval-ms")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--help" | "-h" => {
                return Err("usage: lobster-serve [--addr HOST:PORT] [--shards N] \
                     [--workers N] [--data DIR] [--capacity-mb MB] [--pool-mb MB] \
                     [--max-conns N] [--chunk-kb N] [--gate-mb N] [--no-defrag] \
                     [--defrag-interval-ms N]"
                    .to_string())
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn engine_config(a: &Args) -> Config {
    Config {
        pool_frames: (a.pool_mb << 20) / 4096,
        pool_variant: PoolVariant::Vm {
            alias: Some(AliasConfig {
                workers: a.workers.max(1),
                worker_local_bytes: 16 << 20,
                shared_bytes: 64 << 20,
            }),
        },
        workers: a.workers.max(1),
        commit_wait: false,
        ..Config::default()
    }
}

fn open_engine(a: &Args) -> lobster_types::Result<(Arc<ShardedDatabase>, ShardedRelation)> {
    let cfg = engine_config(a);
    let cap = a.capacity_mb << 20;
    let mut parts = Vec::new();
    let mut existing = false;
    for s in 0..a.shards.max(1) {
        let (data, wal): (Arc<dyn Device>, Arc<dyn Device>) = match &a.data {
            Some(dir) => {
                std::fs::create_dir_all(dir).map_err(lobster_types::Error::Io)?;
                let dpath = std::path::PathBuf::from(format!("{dir}/data-s{s}.lob"));
                let wpath = std::path::PathBuf::from(format!("{dir}/wal-s{s}.lob"));
                if dpath.exists() {
                    existing = true;
                    (
                        Arc::new(FileDevice::open(&dpath)?),
                        Arc::new(FileDevice::open(&wpath)?),
                    )
                } else {
                    (
                        Arc::new(FileDevice::create(&dpath, cap)?),
                        Arc::new(FileDevice::create(&wpath, cap / 4)?),
                    )
                }
            }
            None => (
                Arc::new(MemDevice::new(cap as usize)),
                Arc::new(MemDevice::new((cap / 4) as usize)),
            ),
        };
        parts.push(ShardDevices { data, wal });
    }
    let sdb = if existing {
        let (sdb, reports) = ShardedDatabase::open(parts, cfg)?;
        for (s, r) in reports.iter().enumerate() {
            eprintln!("lobster-serve: shard {s} recovered: {r:?}");
        }
        sdb
    } else {
        ShardedDatabase::create(parts, cfg)?
    };
    let rel = match sdb.relation("blobs") {
        Some(rel) => rel,
        None => sdb.create_relation("blobs", RelationKind::Blob)?,
    };
    Ok((sdb, rel))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let (sdb, rel) = match open_engine(&args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("lobster-serve: failed to open engine: {e}");
            std::process::exit(1);
        }
    };

    let serve_cfg = ServeConfig {
        addr: args.addr.clone(),
        max_conns: args.max_conns,
        chunk_bytes: args.chunk_kb << 10,
        gate_budget: if args.gate_mb > 0 {
            args.gate_mb << 20
        } else {
            // Mirror the committer's pin-budget rule: a quarter of the
            // (aggregate) pool may be lease-pinned by streams.
            (args.pool_mb << 20) * args.shards.max(1) as u64 / 4
        },
        ..ServeConfig::default()
    };

    let handle = match Server::start(Arc::clone(&sdb), rel, serve_cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("lobster-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("lobster-serve: listening on {}", handle.local_addr());

    // Background maintenance: one defragmenter thread round-robins the
    // shards, coalescing free space, relocating shattered cold blobs and
    // scrubbing content hashes out-of-band.
    let maintenance = args.defrag.then(|| {
        Defragmenter::start(
            sdb.shards().to_vec(),
            DefragConfig {
                interval: Duration::from_millis(args.defrag_interval_ms.max(1)),
                ..DefragConfig::default()
            },
        )
    });

    // SAFETY-adjacent note (no unsafe here, the shim wraps the call): the
    // handler performs one atomic store, which is async-signal-safe.
    // SAFETY: installing a handler that only stores an atomic.
    unsafe {
        libc::signal(libc::SIGTERM, on_signal as *const () as libc::sighandler_t);
        libc::signal(libc::SIGINT, on_signal as *const () as libc::sighandler_t);
    }

    while !SIG_SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!(
        "lobster-serve: draining ({} connections)",
        handle.active_connections()
    );
    // Quiesce maintenance before the serve drain: stop() joins the
    // defragmenter thread, so an in-flight relocation batch finishes its
    // atomic swap (or aborts) before the committers are drained below.
    if let Some(d) = maintenance {
        d.pause();
        d.stop();
        let m = sdb.metrics().snapshot();
        eprintln!(
            "lobster-serve: maintenance quiesced ({} relocations, {} blobs scrubbed)",
            m.defrag_relocations, m.scrub_blobs
        );
    }
    match handle.shutdown() {
        Ok(()) => {
            let m = sdb.metrics().snapshot();
            eprintln!(
                "lobster-serve: clean shutdown ({} requests, {} bytes streamed)",
                m.serve_requests, m.serve_bytes_streamed
            );
        }
        Err(e) => {
            eprintln!("lobster-serve: shutdown error: {e}");
            std::process::exit(1);
        }
    }
}
