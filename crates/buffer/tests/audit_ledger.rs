//! Regression tests for the latch/pin ledger: prove the auditor actually
//! catches the bug classes it exists for — a double unlock on the versioned
//! latch and a leaked `prevent_evict` pin. The ledger only records in debug
//! builds, so everything here is gated on `debug_assertions`.
#![cfg(debug_assertions)]

use lobster_buffer::{ExtentPool, FlushItem, PoolConfig};
use lobster_extent::ExtentSpec;
use lobster_storage::{Device, MemDevice};
use lobster_types::{Geometry, Pid};
use std::sync::Arc;

const PAGE: usize = 4096;

fn vm_pool(frames: u64) -> Arc<ExtentPool> {
    let dev: Arc<dyn Device> = Arc::new(MemDevice::new(64 << 20));
    ExtentPool::new(
        dev,
        Geometry::new(PAGE),
        PoolConfig {
            frames,
            alias: None,
            io_threads: 2,
            batched_faults: true,
            io_retries: 3,
        },
        lobster_metrics::new_metrics(),
    )
}

fn seeded_extent(pool: &ExtentPool) -> ExtentSpec {
    let spec = ExtentSpec::new(Pid::new(0), 2);
    let mut g = pool.create_extent(spec).unwrap();
    g.fill(0x5A);
    g.mark_dirty();
    drop(g);
    pool.flush_extents(&[FlushItem::whole(spec)]).unwrap();
    pool.set_prevent_evict(spec.start, false);
    spec
}

#[test]
fn double_unlock_is_caught() {
    let pool = vm_pool(64);
    let spec = seeded_extent(&pool);

    // Balanced acquire/release passes through the ledger silently.
    let g = pool.read_extent(spec).unwrap();
    drop(g);

    // A release with no matching acquire must panic in the ledger before it
    // can corrupt the shared count in the page-table entry.
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.debug_force_release_shared(spec.start);
    }))
    .expect_err("ledger must flag a shared release that was never acquired");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("double unlock"),
        "unexpected panic message: {msg}"
    );
}

#[test]
fn leaked_prevent_evict_pin_is_caught() {
    let pool = vm_pool(64);
    let spec = seeded_extent(&pool);

    // Simulate a commit path that pins the extent and then forgets to
    // unpin it (e.g. an error path skipping the flush-completion hook).
    pool.set_prevent_evict(spec.start, true);
    let leaked = pool.audit().leaked_pins();
    assert_eq!(leaked, vec![spec.start.raw()], "pin must be recorded");
    assert!(
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.audit().assert_no_leaked_pins();
        }))
        .is_err(),
        "quiesce check must panic while a pin is leaked"
    );

    // The legitimate unpin clears the ledger and the check passes again.
    pool.set_prevent_evict(spec.start, false);
    pool.audit().assert_no_leaked_pins();
    assert_eq!(pool.audit().held_latches(), 0);
}

#[test]
fn same_key_reentry_is_caught() {
    let pool = vm_pool(64);
    let spec = seeded_extent(&pool);

    // Holding the extent exclusively and then trying to block on it again
    // from the same thread is a guaranteed self-deadlock; the ledger must
    // refuse before the thread hangs forever.
    let g = pool.write_extent(spec).unwrap();
    assert!(
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = pool.read_extent(spec);
        }))
        .is_err(),
        "blocking shared acquisition under an exclusive self-hold must panic"
    );
    drop(g);

    // After releasing, the same acquisition is fine.
    let g = pool.read_extent(spec).unwrap();
    drop(g);
    assert_eq!(pool.audit().held_latches(), 0);
}
