//! WAL torture tests: arbitrary corruption of the durable log region must
//! never produce garbage records — the CRC-framed scan yields a clean
//! prefix of what was written, exactly like a real log after a torn tail.

use lobster_storage::{Device, MemDevice};
use lobster_wal::{LogRecord, Wal};
use proptest::prelude::*;
use std::sync::Arc;

/// Case-count multiplier for the nightly torture CI job
/// (`LOBSTER_TORTURE_MULT=10`); unset or invalid means 1.
fn torture_mult() -> u32 {
    std::env::var("LOBSTER_TORTURE_MULT")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&m| m >= 1)
        .unwrap_or(1)
}

fn sample_records(n: usize, seed: u64) -> Vec<LogRecord> {
    (0..n as u64)
        .flat_map(|i| {
            let key = format!("key{:04}", i ^ seed).into_bytes();
            vec![
                LogRecord::TxnBegin { txn: i },
                LogRecord::Insert {
                    txn: i,
                    relation: (i % 3) as u32,
                    key: key.clone(),
                    value: vec![
                        (i as u8).wrapping_mul(37);
                        (seed as usize + i as usize * 13) % 300
                    ],
                },
                LogRecord::TxnCommit { txn: i },
            ]
        })
        .collect()
}

/// `got` must be a prefix of `want`, record by record.
fn assert_prefix(got: &[LogRecord], want: &[LogRecord]) -> std::result::Result<(), TestCaseError> {
    prop_assert!(got.len() <= want.len(), "scan produced extra records");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert_eq!(g, w, "record {} diverges", i);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48 * torture_mult()))]

    /// A single flipped byte anywhere in the log yields a valid prefix.
    #[test]
    fn byte_flip_yields_clean_prefix(n in 1usize..30, seed in any::<u64>(),
                                     at in 0u64..200_000, flip in 1u8..=255) {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(8 << 20));
        let wal = Wal::create(dev.clone(), lobster_metrics::new_metrics()).unwrap();
        let records = sample_records(n, seed);
        wal.append_and_commit(&records).unwrap();
        let end = wal.flushed_lsn();
        let epoch = wal.current_epoch();
        drop(wal);

        let at = at % end;
        let mut b = [0u8; 1];
        dev.read_at(&mut b, at).unwrap();
        b[0] ^= flip;
        dev.write_at(&b, at).unwrap();

        let got = Wal::read_records(&dev, epoch).unwrap();
        assert_prefix(&got, &records)?;
        if at < lobster_wal::WAL_HEADER {
            // Header damage cannot touch the frame stream itself.
            prop_assert_eq!(got.len(), records.len());
        }
    }

    /// Zeroing the log from an arbitrary cut point (a torn tail) keeps every
    /// record whose frame lies wholly before the cut.
    #[test]
    fn torn_tail_keeps_full_frames(n in 1usize..30, seed in any::<u64>(), cut_frac in 0.0f64..1.0) {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(8 << 20));
        let wal = Wal::create(dev.clone(), lobster_metrics::new_metrics()).unwrap();
        let records = sample_records(n, seed);
        // Commit in per-transaction groups so frames land at stable offsets.
        for chunk in records.chunks(3) {
            wal.append_and_commit(chunk).unwrap();
        }
        let end = wal.flushed_lsn();
        let epoch = wal.current_epoch();
        drop(wal);

        let cut = ((end as f64 * cut_frac) as u64).max(lobster_wal::WAL_HEADER);
        let zeros = vec![0u8; (end - cut) as usize];
        dev.write_at(&zeros, cut).unwrap();

        let got = Wal::read_records(&dev, epoch).unwrap();
        assert_prefix(&got, &records)?;
        // Reopen must also succeed and find a consistent end-of-log.
        let wal2 = Wal::open(dev, lobster_metrics::new_metrics()).unwrap();
        let again = wal2.read_all().unwrap();
        prop_assert_eq!(again.len(), got.len(), "reopen sees the same prefix");
    }

    /// Records from a previous epoch are invisible after truncation, even
    /// though their bytes may still be physically present.
    #[test]
    fn stale_epoch_frames_are_ignored(n in 1usize..20, seed in any::<u64>()) {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(8 << 20));
        let wal = Wal::create(dev.clone(), lobster_metrics::new_metrics()).unwrap();
        let old = sample_records(n, seed);
        wal.append_and_commit(&old).unwrap();
        wal.checkpoint_truncate().unwrap();

        let new = sample_records(2, seed.wrapping_add(1));
        wal.append_and_commit(&new).unwrap();
        let got = wal.read_all().unwrap();
        prop_assert_eq!(got, new);
    }
}

/// Deterministic sanity check: damage precisely the first frame's CRC and
/// nothing survives; damage the last frame's payload and all but the final
/// transaction survives.
#[test]
fn targeted_frame_damage() {
    let dev: Arc<dyn Device> = Arc::new(MemDevice::new(8 << 20));
    let wal = Wal::create(dev.clone(), lobster_metrics::new_metrics()).unwrap();
    let records = sample_records(5, 7);
    wal.append_and_commit(&records).unwrap();
    let epoch = wal.current_epoch();
    let end = wal.flushed_lsn();
    drop(wal);

    // Hit the last byte of the log: only the final record can die.
    let mut b = [0u8; 1];
    dev.read_at(&mut b, end - 1).unwrap();
    let orig = b[0];
    b[0] ^= 0xFF;
    dev.write_at(&b, end - 1).unwrap();
    let got = Wal::read_records(&dev, epoch).unwrap();
    assert_eq!(got.len(), records.len() - 1);

    // Restore, then hit the first frame: everything dies at once.
    b[0] = orig;
    dev.write_at(&b, end - 1).unwrap();
    let mut hdr = [0u8; 1];
    let first = 4096u64 + 5; // inside the first frame's CRC field
    dev.read_at(&mut hdr, first).unwrap();
    hdr[0] ^= 0x01;
    dev.write_at(&hdr, first).unwrap();
    let got = Wal::read_records(&dev, epoch).unwrap();
    assert!(
        got.is_empty(),
        "a broken first frame ends the scan immediately"
    );
}
