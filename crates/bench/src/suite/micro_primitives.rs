//! Micro-benchmarks of the primitives the engine's hot paths are built
//! from: resumable SHA-256 (growth ops), B-Tree point ops (metadata
//! path), tier-table math (allocation path), and CRC-32 (WAL framing).
//!
//! The standalone bench binary used criterion for these; the suite runs
//! the same bodies under a manual timing loop with per-iteration
//! latencies recorded into a [`LocalRecorder`], so the JSON report gets
//! p50/p95/p99 for each primitive.

use crate::*;
use lobster_btree::{BTree, LexCmp};
use lobster_buffer::{ExtentPool, PoolConfig};
use lobster_extent::{plan_sequence, ExtentAllocator, TierPolicy, TierTable};
use lobster_metrics::LocalRecorder;
use lobster_sha256::Sha256;
use lobster_storage::{Device, MemDevice};
use lobster_types::{crc32, Geometry, Pid};
use std::sync::Arc;
use std::time::Instant;

/// Time `iters` calls of `f`, recording each call's latency.
/// Returns (ops/s, latency histogram snapshot).
fn time_loop<R>(iters: usize, mut f: impl FnMut() -> R) -> (f64, lobster_metrics::HistSnapshot) {
    let mut rec = LocalRecorder::new();
    // A short warmup keeps first-touch effects out of the histogram.
    for _ in 0..(iters / 10).max(1) {
        std::hint::black_box(f());
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        rec.record(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    let secs = t0.elapsed().as_secs_f64();
    let hist = lobster_metrics::Histogram::new();
    hist.merge_recorder(&rec);
    (iters as f64 / secs.max(1e-9), hist.snapshot())
}

fn push(
    report: &mut Report,
    table: &mut Table,
    group: &str,
    name: &str,
    iters: usize,
    r: (f64, lobster_metrics::HistSnapshot),
) {
    let (rate, hist) = r;
    report.push(
        Entry::throughput("Our", rate)
            .param("group", group)
            .param("micro", name)
            .latency("op", hist.summary()),
    );
    table.row(&[
        format!("{group}/{name}"),
        fmt_rate(rate),
        lobster_metrics::fmt_ns(hist.percentile(50.0)),
        lobster_metrics::fmt_ns(hist.percentile(99.0)),
        iters.to_string(),
    ]);
}

pub(crate) fn run(report: &mut Report) {
    banner(
        "Micro — SHA-256, B-Tree point ops, tier math, CRC-32",
        "hot-path primitives",
    );
    let mut table = Table::new(&["micro", "ops/s", "p50", "p99", "iters"]);

    // ---- SHA-256 ------------------------------------------------------------
    {
        let blob = vec![0xABu8; 4 << 20];
        let iters = scaled(60).max(10);
        let r = time_loop(iters, || Sha256::digest(&blob));
        push(report, &mut table, "sha256", "full_rehash_4MiB", iters, r);

        // The paper's growth path: resume from the midstate instead of
        // re-hashing the existing content.
        let mut h = Sha256::new();
        h.update(&blob);
        let mid = h.midstate();
        let tail = &blob[mid.processed as usize..];
        let appended = vec![0xCDu8; 64 * 1024];
        let iters = scaled(2000).max(100);
        let r = time_loop(iters, || {
            let mut h = Sha256::resume(mid);
            h.update(tail);
            h.update(&appended);
            h.finalize()
        });
        push(
            report,
            &mut table,
            "sha256",
            "resume_append_64KiB",
            iters,
            r,
        );

        // Per-call dispatch cost: many tiny one-shot digests, so the SHA-NI
        // feature probe in compress_many runs once per digest. With the cached
        // OnceLock detection this is a single load; regressing to a repeated
        // CPUID probe shows up here immediately.
        let small = vec![0x5Au8; 64];
        let iters = scaled(300).max(20);
        let r = time_loop(iters, || {
            let mut acc = 0u8;
            for _ in 0..1024 {
                acc ^= Sha256::digest(&small)[0];
            }
            acc
        });
        push(report, &mut table, "sha256", "dispatch_1024x64B", iters, r);
    }

    // ---- B-Tree -------------------------------------------------------------
    {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(256 << 20));
        let pool = ExtentPool::new(
            dev,
            Geometry::new(4096),
            PoolConfig {
                frames: 32 * 1024,
                alias: None,
                io_threads: 1,
                batched_faults: true,
                io_retries: 3,
            },
            lobster_metrics::new_metrics(),
        );
        let table_t = Arc::new(TierTable::new(TierPolicy::default()));
        let alloc = Arc::new(ExtentAllocator::new(table_t, Pid::new(0), 60_000));
        let tree = BTree::create(pool, alloc, Arc::new(LexCmp), 1).unwrap();
        let keys = scaled(100_000).max(1000) as u32;
        for k in 0..keys {
            tree.insert(format!("key{k:09}").as_bytes(), &k.to_le_bytes(), false)
                .unwrap();
        }

        let iters = scaled(200_000).max(1000);
        let mut k = 0u32;
        let r = time_loop(iters, || {
            k = (k.wrapping_mul(1103515245).wrapping_add(12345)) % keys;
            tree.lookup_map(format!("key{k:09}").as_bytes(), |v| v.len())
                .unwrap()
        });
        push(report, &mut table, "btree", "lookup", iters, r);

        let iters = scaled(60_000).max(500);
        let scan_max = keys.saturating_sub(keys / 100).max(1);
        let mut k = 0u32;
        let r = time_loop(iters, || {
            k = (k.wrapping_mul(1103515245).wrapping_add(12345)) % scan_max;
            let mut n = 0;
            tree.scan_from(format!("key{k:09}").as_bytes(), |_, _| {
                n += 1;
                n < 10
            })
            .unwrap();
            n
        });
        push(report, &mut table, "btree", "scan_10", iters, r);
    }

    // ---- Tier-table math ----------------------------------------------------
    {
        let tiers = TierTable::new(TierPolicy::default());
        for pages in [25u64, 2_560, 262_144] {
            let iters = scaled(200_000).max(1000);
            let r = time_loop(iters, || plan_sequence(&tiers, pages, false).unwrap());
            push(
                report,
                &mut table,
                "extent_tier",
                &format!("plan_sequence_{pages}p"),
                iters,
                r,
            );
        }
    }

    // ---- CRC-32 -------------------------------------------------------------
    {
        let record = vec![0x5Au8; 512];
        let iters = scaled(1_000_000).max(10_000);
        let r = time_loop(iters, || crc32(&record));
        push(report, &mut table, "crc32", "wal_record_512B", iters, r);
    }

    table.print();
}
