//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `channel` subset the workspace uses: `unbounded()` with
//! cloneable multi-producer multi-consumer `Sender`/`Receiver`. Built on a
//! shared `VecDeque` guarded by a `Mutex` + `Condvar`; disconnection is
//! tracked by counting live senders/receivers.

#![forbid(unsafe_code)]

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cv: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by `send` when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by `recv` when the channel is empty and disconnected.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by `try_recv`.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by `recv_timeout`.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    pub struct Sender<T>(Arc<Shared<T>>);

    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.0
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push_back(value);
            self.0.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            // Relaxed is fine for the increment: a clone can only race with
            // other clones, and disconnection is decided by the AcqRel
            // fetch_sub in Drop, which orders against these adds.
            self.0.senders.fetch_add(1, Ordering::Relaxed);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.0.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.0.cv.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .0
                    .cv
                    .wait_timeout(q, left)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            // Relaxed for the same reason as `Sender::clone` above.
            self.0.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert!(tx.send(5).is_err());
        }

        #[test]
        fn recv_timeout_semantics() {
            use std::time::Duration;
            let (tx, rx) = unbounded::<i32>();
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded::<usize>();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut sum = 0usize;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            drop(rx);
            for i in 1..=1000usize {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = consumers.into_iter().map(|t| t.join().unwrap()).sum();
            assert_eq!(total, 500_500);
        }
    }
}
