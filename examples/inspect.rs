//! Storage anatomy tour: build a small database, then dump everything the
//! engine knows about it — catalog, B-Tree shape, Blob States with their
//! extent sequences and tier classes, WAL composition, allocator
//! occupancy, and the cost counters.
//!
//! This doubles as the project's `db-inspect` debugging tool: point the
//! `LOBSTER_INSPECT` environment variable at an existing `data.lobster` /
//! `wal.lobster` pair to dump that database instead of the demo.
//!
//! ```text
//! cargo run --release --example inspect
//! LOBSTER_INSPECT=/path/to/dir cargo run --release --example inspect
//! ```

use lobster::core::{Config, Database, RelationKind};
use lobster::storage::{FileDevice, MemDevice};
use lobster::workloads::make_payload;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = match std::env::var("LOBSTER_INSPECT") {
        Ok(dir) => {
            let dir = std::path::PathBuf::from(dir);
            let device = Arc::new(FileDevice::open(&dir.join("data.lobster"))?);
            let wal = Arc::new(FileDevice::open(&dir.join("wal.lobster"))?);
            let (db, report) = Database::open(device, wal, Config::default())?;
            println!(
                "opened existing database (recovery: {} committed, {} rolled back)\n",
                report.committed, report.uncommitted
            );
            db
        }
        Err(_) => demo_database()?,
    };

    // ------------------------------------------------------------ catalog --
    println!("== catalog ==");
    let geo = db.geometry();
    println!(
        "page size {} B, device utilization {:.1}%",
        geo.page_size(),
        db.utilization() * 100.0
    );
    for name in db.relation_names() {
        let rel = db.relation(&name).expect("listed");
        let stats = rel.tree.stats()?;
        println!(
            "  {:<16} {:?}  height={} nodes={} entries={} fill={:.0}%",
            name,
            rel.kind,
            stats.height,
            stats.nodes,
            stats.entries,
            100.0 * stats.used_bytes as f64 / stats.capacity_bytes.max(1) as f64,
        );
    }

    // ------------------------------------------------------- blob layout --
    println!("\n== blob states ==");
    let table = db.tier_table().clone();
    for name in db.relation_names() {
        let rel = db.relation(&name).expect("listed");
        if rel.kind != RelationKind::Blob || name.starts_with('_') {
            continue;
        }
        let mut t = db.begin();
        let mut rows = Vec::new();
        t.scan_states(&rel, b"", |key, state| {
            rows.push((String::from_utf8_lossy(key).into_owned(), state.clone()));
            rows.len() < 16 // dump at most 16 per relation
        })?;
        t.commit()?;
        for (key, state) in rows {
            let tiers: Vec<String> = state
                .extents
                .iter()
                .enumerate()
                .map(|(pos, pid)| format!("P{}({}p)", pid.0, table.size_of(pos)))
                .collect();
            let tail = state
                .tail
                .map(|(pid, pages)| format!(" tail=P{}({}p)", pid.0, pages))
                .unwrap_or_default();
            println!(
                "  {name}/{key}: {} B  sha={:02x}{:02x}{:02x}{:02x}…  extents=[{}]{}",
                state.size,
                state.sha256[0],
                state.sha256[1],
                state.sha256[2],
                state.sha256[3],
                tiers.join(" "),
                tail,
            );
        }
    }

    // -------------------------------------------------------------- WAL ---
    println!("\n== write-ahead log (current epoch) ==");
    let a = db.wal().analyze()?;
    println!(
        "  {} records / {} B: {} commits, {} inserts, {} updates, {} deletes",
        a.records, a.bytes, a.commits, a.inserts, a.updates, a.deletes
    );
    println!(
        "  content bytes in log: {} (asynchronous BLOB logging keeps this at 0)",
        a.content_bytes
    );
    if a.page_images > 0 {
        println!(
            "  checkpoint page images: {} ({} B)",
            a.page_images, a.image_bytes
        );
    }
    if let Some(mean) = a.bytes.checked_div(a.records) {
        println!("  mean record size: {mean} B");
    }

    // ----------------------------------------------------------- counters --
    println!("\n== cost counters ==");
    let s = db.metrics().snapshot();
    println!(
        "  pages read {} / written {}, cache hits {} / misses {}",
        s.pages_read, s.pages_written, s.cache_hits, s.cache_misses
    );
    println!(
        "  wal bytes {}, fsyncs {}, extent allocs {} / frees {}, latches {}",
        s.wal_bytes, s.fsyncs, s.extent_allocs, s.extent_frees, s.latch_acquisitions
    );
    println!("  txn commits {} / aborts {}", s.txn_commits, s.txn_aborts);

    // ------------------------------------------------------------- scrub --
    println!("\n== integrity scrub ==");
    let rep = db.scrub()?;
    if rep.is_clean() {
        println!(
            "  {} blobs / {} content bytes verified against their SHA-256: clean",
            rep.blobs, rep.bytes
        );
    } else {
        for (rel, key) in &rep.corrupt {
            println!("  CORRUPT: {rel}/{}", String::from_utf8_lossy(key));
        }
    }
    Ok(())
}

/// A small mixed database: three relations, a spread of blob sizes.
fn demo_database() -> Result<Arc<Database>, Box<dyn std::error::Error>> {
    let db = Database::create(
        Arc::new(MemDevice::new(256 << 20)),
        Arc::new(MemDevice::new(64 << 20)),
        Config {
            use_tail_extents: true,
            ..Config::default()
        },
    )?;
    let photos = db.create_relation("photos", RelationKind::Blob)?;
    let notes = db.create_relation("notes", RelationKind::Blob)?;
    let tags = db.create_relation("tags", RelationKind::Kv)?;

    let mut t = db.begin();
    for (key, size) in [
        ("sunset.raw", 8 << 20),
        ("beach.jpg", 740_000),
        ("icon.png", 3_000),
    ] {
        t.put_blob(&photos, key.as_bytes(), &make_payload(size, size as u64))?;
    }
    t.put_blob(&notes, b"todo.txt", b"ship the inspector")?;
    t.put_kv(&tags, b"sunset.raw", b"vacation,raw")?;
    t.commit()?;

    // One append so a resumed SHA midstate is visible in the dump.
    let mut t = db.begin();
    t.append_blob(&notes, b"todo.txt", b"\n- dump blob states")?;
    t.commit()?;
    db.wait_for_durability().unwrap();
    println!("built demo database (set LOBSTER_INSPECT=<dir> to inspect your own)\n");
    Ok(db)
}
