//! `lobster-serve`: a zero-copy TCP blob-serving front end for the
//! LOBSTER engine.
//!
//! The paper's client/server baselines charge a *modeled* per-request
//! overhead (round trip + per-KiB transfer); this crate makes that cost
//! real: a length-prefixed binary protocol (ping / put / get / get_range
//! / stat) served directly from [`lobster_core::ShardedDatabase`], with
//! range reads streamed chunk-by-chunk straight out of the buffer pool's
//! frames under `prevent_evict` streaming leases — no intermediate
//! response buffer. See DESIGN.md §"serving path" for the frame layout,
//! the pin-lease lifecycle, and the backpressure rules.

#![forbid(unsafe_code)]

pub mod protocol;
pub mod server;

pub use protocol::{
    encode_request, parse_request, read_response, write_response_header, Client, Opcode, Parsed,
    Request, Response, StatReply, Status, DEFAULT_MAX_FRAME,
};
pub use server::{ServeConfig, Server, ServerHandle, WorkerSlots};
