//! Storage devices and batched asynchronous I/O.
//!
//! The paper assumes the DBMS runs on an NVMe SSD and issues *batched
//! asynchronous* I/O (one submission per extent sequence). This crate
//! provides:
//!
//! * [`Device`] — the abstract block device all engines and baseline models
//!   share, with byte-addressed reads/writes and durability barriers.
//! * [`MemDevice`] — an in-memory device for tests and in-memory experiments.
//! * [`FileDevice`] — a real file-backed device using positional I/O.
//! * [`ThrottledDevice`] — a deterministic latency/bandwidth model wrapped
//!   around any device, standing in for the paper's Samsung 980 Pro so that
//!   I/O-bound comparisons reproduce on any host (DESIGN.md substitution 1).
//! * [`CrashDevice`] — fault injection for recovery tests: drops or truncates
//!   writes after an armed trigger point.
//! * [`FaultDevice`] — deterministic, seed-driven transient-fault injection
//!   (transient/permanent EIO, short writes, bit rot, misdirected writes)
//!   with an injection log for test assertions.
//! * [`OutOfPlaceDevice`] — the paper's §VI future-work proposal: a
//!   translation layer that writes every logical block out of place to a
//!   sequential frontier, with greedy garbage collection (an anti-aging
//!   FTL in userspace).
//! * [`AsyncIo`] — a submission/completion engine (thread-pool stand-in for
//!   io_uring) used to flush WAL and extents concurrently at commit.

// Every `unsafe` block must carry a `// SAFETY:` justification; enforced
// in CI via clippy (`undocumented_unsafe_blocks`).
#![deny(clippy::undocumented_unsafe_blocks)]

mod async_io;
mod crash;
mod device;
mod fault;
mod file;
mod mem;
mod out_of_place;
mod throttle;

pub use async_io::{AsyncIo, BatchHandle, IoKind, IoReq};
pub use crash::CrashDevice;
pub use device::{Device, DeviceExt};
pub use fault::{permanent_eio, transient_eio, FaultConfig, FaultDevice, FaultKind, Injection};
pub use file::FileDevice;
pub use mem::MemDevice;
pub use out_of_place::{GcStats, OutOfPlaceDevice};
pub use throttle::{ThrottleProfile, ThrottledDevice};
