use crate::Device;
use lobster_types::Result;
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// A deterministic SSD performance model: per-request latency plus a
/// bandwidth term proportional to the request size.
///
/// This is the stand-in for the paper's NVMe SSD (DESIGN.md substitution 1).
/// Its key property is the one the evaluation leans on: **few large requests
/// are much cheaper than many small requests** for the same byte volume,
/// because each request pays the fixed latency. Our engine reads a BLOB with
/// one request per extent; chain/tree-based formats pay per page.
#[derive(Clone, Copy, Debug)]
pub struct ThrottleProfile {
    /// Fixed cost per request (device + submission latency).
    pub read_latency: Duration,
    pub write_latency: Duration,
    /// Sequential read bandwidth in bytes/second.
    pub read_bw: u64,
    /// Sequential write bandwidth in bytes/second.
    pub write_bw: u64,
    /// Cost of a durability barrier.
    pub sync_latency: Duration,
}

impl ThrottleProfile {
    /// Rough NVMe-class profile scaled down so benches finish quickly while
    /// keeping realistic latency/bandwidth ratios.
    pub fn nvme() -> Self {
        ThrottleProfile {
            read_latency: Duration::from_micros(20),
            write_latency: Duration::from_micros(25),
            read_bw: 3_000_000_000,
            write_bw: 2_000_000_000,
            sync_latency: Duration::from_micros(100),
        }
    }

    /// A slower SATA-class profile, useful for exaggerating I/O effects in
    /// tests.
    pub fn sata() -> Self {
        ThrottleProfile {
            read_latency: Duration::from_micros(80),
            write_latency: Duration::from_micros(90),
            read_bw: 500_000_000,
            write_bw: 450_000_000,
            sync_latency: Duration::from_millis(1),
        }
    }

    fn read_cost(&self, len: usize) -> Duration {
        self.read_latency + Duration::from_nanos(len as u64 * 1_000_000_000 / self.read_bw)
    }

    fn write_cost(&self, len: usize) -> Duration {
        self.write_latency + Duration::from_nanos(len as u64 * 1_000_000_000 / self.write_bw)
    }
}

/// Wraps any device and charges the [`ThrottleProfile`] cost for each
/// operation.
///
/// The model works like a real multi-queue SSD regardless of how many host
/// CPUs execute the requests: *transfers* serialize on a shared bandwidth
/// bus, *latencies* overlap freely. Synchronous calls block until their
/// own completion deadline; [`Device::submit_read`]/[`Device::submit_write`]
/// return the deadline so a batch submitter can overlap many requests and
/// wait once — exactly the io_uring pattern the engine's commit path uses.
pub struct ThrottledDevice<D> {
    inner: D,
    profile: ThrottleProfile,
    /// The moment the shared bus becomes free (bandwidth serialization).
    bus_free_at: Mutex<Instant>,
}

impl<D: Device> ThrottledDevice<D> {
    pub fn new(inner: D, profile: ThrottleProfile) -> Self {
        ThrottledDevice {
            inner,
            profile,
            bus_free_at: Mutex::new(Instant::now()),
        }
    }

    pub fn inner(&self) -> &D {
        &self.inner
    }

    fn spin_until(deadline: Instant) {
        // Yield-wait: checking the clock each round keeps microsecond
        // accuracy (sleep would oversleep by 50 µs+), while yielding lets
        // other runnable threads — e.g. the engine continuing past an
        // asynchronous commit — use the CPU during modeled device time.
        while Instant::now() < deadline {
            std::thread::yield_now();
        }
    }

    /// Reserve bus time for a transfer and return the completion deadline.
    fn completion_deadline(&self, transfer: Duration, latency: Duration) -> Instant {
        let now = Instant::now();
        let mut bus = self.bus_free_at.lock();
        let start = (*bus).max(now);
        *bus = start + transfer;
        start + transfer + latency
    }
}

impl<D: Device> Device for ThrottledDevice<D> {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        let deadline = self.submit_read(buf, offset)?;
        if let Some(d) = deadline {
            Self::spin_until(d);
        }
        Ok(())
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> Result<()> {
        let deadline = self.submit_write(buf, offset)?;
        if let Some(d) = deadline {
            Self::spin_until(d);
        }
        Ok(())
    }

    fn submit_read(&self, buf: &mut [u8], offset: u64) -> Result<Option<Instant>> {
        self.inner.read_at(buf, offset)?;
        let transfer = self.profile.read_cost(buf.len()) - self.profile.read_latency;
        Ok(Some(
            self.completion_deadline(transfer, self.profile.read_latency),
        ))
    }

    fn submit_write(&self, buf: &[u8], offset: u64) -> Result<Option<Instant>> {
        self.inner.write_at(buf, offset)?;
        let transfer = self.profile.write_cost(buf.len()) - self.profile.write_latency;
        Ok(Some(
            self.completion_deadline(transfer, self.profile.write_latency),
        ))
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()?;
        Self::spin_until(Instant::now() + self.profile.sync_latency);
        Ok(())
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    #[test]
    fn large_requests_beat_small_for_same_volume() {
        let profile = ThrottleProfile {
            read_latency: Duration::from_micros(50),
            write_latency: Duration::from_micros(50),
            read_bw: 1_000_000_000,
            write_bw: 1_000_000_000,
            sync_latency: Duration::from_micros(10),
        };
        let dev = ThrottledDevice::new(MemDevice::new(1 << 20), profile);
        let mut buf = vec![0u8; 256 * 1024];

        let t0 = Instant::now();
        dev.read_at(&mut buf, 0).unwrap();
        let one_big = t0.elapsed();

        let t0 = Instant::now();
        for i in 0..64 {
            dev.read_at(&mut buf[..4096], i * 4096).unwrap();
        }
        let many_small = t0.elapsed();

        assert!(
            many_small > one_big * 2,
            "64 page reads ({many_small:?}) should cost far more than one extent read ({one_big:?})"
        );
    }

    #[test]
    fn passthrough_correctness() {
        let dev = ThrottledDevice::new(MemDevice::new(8192), ThrottleProfile::nvme());
        dev.write_at(&[9u8; 100], 50).unwrap();
        let mut out = [0u8; 100];
        dev.read_at(&mut out, 50).unwrap();
        assert_eq!(out, [9u8; 100]);
        dev.sync().unwrap();
        assert_eq!(dev.capacity(), 8192);
    }
}
