//! Ablation (§III-G): coarse-grained (extent) latching vs fine-grained
//! (per-page) synchronization.
//!
//! Paper's argument: when N threads race to read the same cold N-page
//! extent, per-page latching makes *every* thread win one latch and issue
//! one `pread`, while extent latching lets one thread perform a single
//! large read and the rest proceed. We measure both pools on exactly that
//! pattern: concurrent cold reads of shared large objects.

use crate::*;
use lobster_buffer::{BlobPool, ExtentPool, FlushItem, HashTablePool, PoolConfig};
use lobster_extent::ExtentSpec;
use lobster_storage::{Device, MemDevice, ThrottleProfile, ThrottledDevice};
use lobster_types::{Geometry, Pid};
use std::sync::Arc;
use std::time::Instant;

const EXTENT_PAGES: u64 = 64; // 256 KiB extents

pub(crate) fn run(report: &mut Report) {
    banner(
        "Ablation — coarse (extent) vs fine (per-page) latching",
        "§III-G \"Synchronization\"",
    );
    let threads = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    let extents = scaled(64) as u64;
    let rounds = scaled(30);

    let geo = Geometry::new(4096);
    let mut table = Table::new(&[
        "pool",
        "reads/s",
        "device pages read",
        "latch acquisitions",
        "redundancy",
    ]);

    for coarse in [true, false] {
        let dev: Arc<dyn Device> = Arc::new(ThrottledDevice::new(
            MemDevice::new(2 << 30),
            ThrottleProfile::nvme(),
        ));
        let metrics = lobster_metrics::new_metrics();
        let pool = if coarse {
            BlobPool::Vm(ExtentPool::new(
                dev.clone(),
                geo,
                PoolConfig {
                    frames: 128 * 1024,
                    alias: None,
                    io_threads: 4,
                    batched_faults: true,
                    io_retries: 3,
                },
                metrics.clone(),
            ))
        } else {
            BlobPool::Ht(HashTablePool::new(
                dev.clone(),
                geo,
                128 * 1024,
                metrics.clone(),
            ))
        };

        // Lay out the extents and flush them to the device.
        let specs: Vec<ExtentSpec> = (0..extents)
            .map(|i| ExtentSpec::new(Pid::new(1 + i * EXTENT_PAGES), EXTENT_PAGES))
            .collect();
        for (i, spec) in specs.iter().enumerate() {
            pool.fill_extent(
                *spec,
                &make_payload((EXTENT_PAGES as usize) * 4096, i as u64),
            )
            .expect("fill");
            pool.flush_extents(&[FlushItem::whole(*spec)])
                .expect("flush");
        }
        let ideal_pages = extents * EXTENT_PAGES * rounds as u64;

        metrics.reset();
        let t0 = Instant::now();
        let mut total_reads = 0u64;
        for _ in 0..rounds {
            // Cold round: drop everything, then all threads storm the same
            // extents in the same order.
            match &pool {
                BlobPool::Vm(p) => p.drop_caches(),
                BlobPool::Ht(p) => {
                    for spec in &specs {
                        p.drop_extent(*spec);
                    }
                }
            }
            std::thread::scope(|s| {
                for w in 0..threads {
                    let pool = pool.clone();
                    let specs = &specs;
                    s.spawn(move || {
                        for spec in specs {
                            pool.read_blob(w, std::slice::from_ref(spec), spec.pages * 4096, |b| {
                                std::hint::black_box(b.len());
                            })
                            .expect("read");
                        }
                    });
                }
            });
            total_reads += (threads as u64) * extents;
        }
        let elapsed = t0.elapsed();
        let m = metrics.snapshot();
        let variant = if coarse { "extent_coarse" } else { "page_fine" };
        let lat = metrics.latencies.snapshot();
        report.push(
            Entry::throughput(variant, total_reads as f64 / elapsed.as_secs_f64())
                .param("latching", variant)
                .latency("engine.pool_fault", lat.pool_fault.summary())
                .counters(m),
        );
        report.push(
            Entry::new(
                variant,
                "read_redundancy",
                "x",
                m.pages_read as f64 / ideal_pages as f64,
                false,
            )
            .param("latching", variant),
        );
        table.row(&[
            if coarse {
                "extent (coarse)"
            } else {
                "per-page (fine)"
            }
            .to_string(),
            fmt_rate(total_reads as f64 / elapsed.as_secs_f64()),
            m.pages_read.to_string(),
            m.latch_acquisitions.to_string(),
            format!("{:.2}x ideal", m.pages_read as f64 / ideal_pages as f64),
        ]);
    }
    table.print();
    println!("\npaper: with coarse latching only one worker loads a contended extent;");
    println!("fine-grained latching multiplies latch traffic and translation work.");
}
