//! Centralized bench-environment knobs (`BenchEnv`).
//!
//! Scale factor, device-throttle routing, and JSON emission used to be read
//! ad hoc (`LOBSTER_BENCH_SCALE` parsed per call, a free-floating throttle
//! `AtomicBool`), so a report could not faithfully state which knobs a run
//! used. All knobs now resolve once, here, and the JSON reports record the
//! exact values via [`BenchEnv::params`].

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// All environment knobs a bench run depends on, resolved once per process.
pub struct BenchEnv {
    /// Workload scale multiplier (`LOBSTER_BENCH_SCALE`, default 1.0).
    pub scale: f64,
    /// Directory to drop `BENCH_<name>.json` into (`LOBSTER_BENCH_JSON_DIR`);
    /// `None` disables emission from standalone `cargo bench` targets.
    pub json_dir: Option<PathBuf>,
    /// Ceiling of the `threads = 1..N` scalability axis
    /// (`LOBSTER_BENCH_THREADS`, default 4, clamped to `1..=64` — the
    /// sharded engine's `MAX_SHARDS`). The axis runs powers of two up to
    /// this value, so `1` collapses it to the single-shard row.
    pub threads: usize,
    /// Route freshly built devices through the NVMe throttle model. Mutable
    /// because the I/O-bound experiments opt in per bench; reset between
    /// suite runs by [`crate::suite::run_spec`].
    throttled: AtomicBool,
}

impl BenchEnv {
    fn from_process_env() -> Self {
        BenchEnv {
            scale: std::env::var("LOBSTER_BENCH_SCALE")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(1.0),
            json_dir: std::env::var_os("LOBSTER_BENCH_JSON_DIR").map(PathBuf::from),
            threads: std::env::var("LOBSTER_BENCH_THREADS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(4)
                .clamp(1, 64),
            throttled: AtomicBool::new(false),
        }
    }

    pub fn throttled(&self) -> bool {
        self.throttled.load(Ordering::SeqCst)
    }

    pub fn set_throttled(&self, on: bool) {
        self.throttled.store(on, Ordering::SeqCst);
    }

    /// `n` scaled, with a floor of 1.
    pub fn scaled(&self, n: usize) -> usize {
        ((n as f64 * self.scale) as usize).max(1)
    }

    /// The knobs as report parameters, recorded verbatim in every JSON file.
    pub fn params(&self) -> Vec<(String, String)> {
        vec![
            ("scale".into(), format!("{}", self.scale)),
            ("threads".into(), format!("{}", self.threads)),
            ("throttled_devices".into(), format!("{}", self.throttled())),
        ]
    }
}

/// The process-wide bench environment.
pub fn env() -> &'static BenchEnv {
    static ENV: OnceLock<BenchEnv> = OnceLock::new();
    ENV.get_or_init(BenchEnv::from_process_env)
}
