use lobster_types::MAX_EXTENTS_PER_BLOB;

/// Which tier-size formula to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TierPolicy {
    /// The paper's formula: tiers are grouped into levels of
    /// `tiers_per_level` tiers each; the size (in pages) of the tier at
    /// (`level`, `position`) is
    /// `(level+1)^(tiers_per_level − position) · (level+2)^position`.
    /// Tiers beyond `levels · tiers_per_level` repeat the largest size.
    Paper { tiers_per_level: u32, levels: u32 },
    /// Doubling sizes: 1, 2, 4, 8, … (up to 50 % wasted space).
    PowerOfTwo,
    /// Fibonacci sizes: 1, 2, 3, 5, 8, … (up to ≈ 38.2 % wasted space).
    Fibonacci,
}

impl Default for TierPolicy {
    fn default() -> Self {
        // The paper's running configuration (10 tiers per level).
        TierPolicy::Paper {
            tiers_per_level: 10,
            levels: 10,
        }
    }
}

/// Precomputed tier sizes: maps the *static position* of an extent within an
/// extent sequence to its size in pages, replacing per-extent size metadata
/// (§III-A "Reducing BLOB metadata").
#[derive(Debug, Clone)]
pub struct TierTable {
    policy: TierPolicy,
    /// `sizes[i]` = pages of the extent at sequence position `i`.
    sizes: Vec<u64>,
    /// `cumulative[i]` = total pages of positions `0..=i`.
    cumulative: Vec<u64>,
}

impl TierTable {
    pub fn new(policy: TierPolicy) -> Self {
        let mut sizes = Vec::with_capacity(MAX_EXTENTS_PER_BLOB);
        match policy {
            TierPolicy::Paper {
                tiers_per_level,
                levels,
            } => {
                assert!(tiers_per_level >= 1 && levels >= 1);
                'outer: for level in 0..levels as u64 {
                    for pos in 0..tiers_per_level {
                        let a = (level + 1).checked_pow(tiers_per_level - pos);
                        let b = (level + 2).checked_pow(pos);
                        let size = match (a, b) {
                            (Some(a), Some(b)) => a.checked_mul(b),
                            _ => None,
                        };
                        match size {
                            Some(s) => sizes.push(s),
                            // Overflow: clamp the rest of the table to the
                            // largest representable tier.
                            None => break 'outer,
                        }
                        if sizes.len() == MAX_EXTENTS_PER_BLOB {
                            break 'outer;
                        }
                    }
                }
            }
            TierPolicy::PowerOfTwo => {
                let mut s: u64 = 1;
                while sizes.len() < MAX_EXTENTS_PER_BLOB {
                    sizes.push(s);
                    s = match s.checked_mul(2) {
                        Some(v) => v,
                        None => break,
                    };
                }
            }
            TierPolicy::Fibonacci => {
                let (mut a, mut b): (u64, u64) = (1, 2);
                while sizes.len() < MAX_EXTENTS_PER_BLOB {
                    sizes.push(a);
                    let next = match a.checked_add(b) {
                        Some(v) => v,
                        None => break,
                    };
                    a = b;
                    b = next;
                }
            }
        }
        // "Any tier after this has the same size as the largest tier."
        let largest = *sizes.last().expect("at least one tier");
        while sizes.len() < MAX_EXTENTS_PER_BLOB {
            sizes.push(largest);
        }

        let mut cumulative = Vec::with_capacity(sizes.len());
        let mut total: u64 = 0;
        for &s in &sizes {
            total = total.saturating_add(s);
            cumulative.push(total);
        }
        TierTable {
            policy,
            sizes,
            cumulative,
        }
    }

    pub fn policy(&self) -> TierPolicy {
        self.policy
    }

    /// Size in pages of the extent at sequence position `pos`.
    #[inline]
    pub fn size_of(&self, pos: usize) -> u64 {
        self.sizes[pos]
    }

    /// Total pages held by the first `count` extents of a sequence.
    #[inline]
    pub fn cumulative_pages(&self, count: usize) -> u64 {
        if count == 0 {
            0
        } else {
            self.cumulative[count - 1]
        }
    }

    /// Number of distinct tier size classes (for sizing free-list arrays).
    pub fn tier_count(&self) -> usize {
        self.sizes.len()
    }

    /// The tier *size class* of position `pos` — positions sharing a size
    /// share a free list.
    pub fn class_of(&self, pos: usize) -> usize {
        // Positions map 1:1 to classes except for the repeated largest tier;
        // using the position index directly keeps free lists exact-size.
        let largest = *self.sizes.last().expect("non-empty");
        if self.sizes[pos] == largest {
            // All max-size tiers share one class: the first position with
            // the largest size.
            self.sizes
                .iter()
                .position(|&s| s == largest)
                .expect("present")
        } else {
            pos
        }
    }

    /// Smallest number of extents whose cumulative size covers `pages`
    /// pages, or `None` if even the full table is too small (BLOB too
    /// large).
    pub fn extents_for_pages(&self, pages: u64) -> Option<usize> {
        if pages == 0 {
            return Some(0);
        }
        match self.cumulative.binary_search(&pages) {
            Ok(i) => Some(i + 1),
            Err(i) if i < self.cumulative.len() => Some(i + 1),
            Err(_) => None,
        }
    }

    /// Maximum pages representable by a full 127-extent sequence.
    pub fn max_pages(&self) -> u64 {
        *self.cumulative.last().expect("non-empty")
    }

    /// Internal fragmentation if a BLOB of `pages` pages is stored in its
    /// minimal sequence without a tail extent: `(allocated − used) /
    /// allocated`.
    pub fn wasted_fraction(&self, pages: u64) -> Option<f64> {
        let n = self.extents_for_pages(pages)?;
        let allocated = self.cumulative_pages(n);
        Some((allocated - pages) as f64 / allocated as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_first_two_levels() {
        // The paper's example with 10 tiers per level.
        let t = TierTable::new(TierPolicy::default());
        let level0: Vec<u64> = (0..10).map(|i| t.size_of(i)).collect();
        assert_eq!(level0, vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512]);
        let level1: Vec<u64> = (10..20).map(|i| t.size_of(i)).collect();
        assert_eq!(
            level1,
            vec![1024, 1536, 2304, 3456, 5184, 7776, 11664, 17496, 26244, 39366]
        );
    }

    #[test]
    fn paper_max_blob_is_petabyte_scale() {
        // The paper claims ~10 PB for 127 extents at 4 KiB pages; the exact
        // constant depends on an under-specified level cap, but the order of
        // magnitude must be petabytes.
        let t = TierTable::new(TierPolicy::default());
        let bytes = t.max_pages() as u128 * 4096;
        assert!(bytes > (1u128 << 50), "max {bytes} should exceed 1 PiB");
    }

    #[test]
    fn power_of_two_and_fibonacci() {
        let p2 = TierTable::new(TierPolicy::PowerOfTwo);
        assert_eq!(
            (0..6).map(|i| p2.size_of(i)).collect::<Vec<_>>(),
            vec![1, 2, 4, 8, 16, 32]
        );
        let fib = TierTable::new(TierPolicy::Fibonacci);
        assert_eq!(
            (0..7).map(|i| fib.size_of(i)).collect::<Vec<_>>(),
            vec![1, 2, 3, 5, 8, 13, 21]
        );
    }

    #[test]
    fn extents_for_pages_minimal() {
        let t = TierTable::new(TierPolicy::default());
        assert_eq!(t.extents_for_pages(0), Some(0));
        assert_eq!(t.extents_for_pages(1), Some(1));
        assert_eq!(t.extents_for_pages(2), Some(2)); // 1+2 >= 2
        assert_eq!(t.extents_for_pages(3), Some(2));
        assert_eq!(t.extents_for_pages(4), Some(3)); // 1+2+4
        assert_eq!(t.extents_for_pages(7), Some(3));
        assert_eq!(t.extents_for_pages(8), Some(4));
    }

    #[test]
    fn cumulative_matches_sizes() {
        for policy in [
            TierPolicy::default(),
            TierPolicy::PowerOfTwo,
            TierPolicy::Fibonacci,
            TierPolicy::Paper {
                tiers_per_level: 5,
                levels: 20,
            },
        ] {
            let t = TierTable::new(policy);
            let mut sum = 0u64;
            for i in 0..t.tier_count() {
                sum = sum.saturating_add(t.size_of(i));
                assert_eq!(t.cumulative_pages(i + 1), sum);
            }
        }
    }

    #[test]
    fn paper_formula_beats_power_of_two_on_waste() {
        // §III-A: the proposed formula wastes less than Power-of-Two for
        // large BLOBs. Check a 20 MB BLOB at 4 KiB pages with 5 tiers/level
        // (the paper's example: ~25 %) against Power-of-Two (~up to 50 %).
        let paper = TierTable::new(TierPolicy::Paper {
            tiers_per_level: 5,
            levels: 20,
        });
        let pages_20mb = 20 * 1024 * 1024 / 4096;
        let w = paper.wasted_fraction(pages_20mb).unwrap();
        assert!(w > 0.15 && w < 0.30, "paper formula waste {w}");

        // Worst-case Power-of-Two waste approaches 50 %: one page past a
        // cumulative boundary.
        let p2 = TierTable::new(TierPolicy::PowerOfTwo);
        let boundary = p2.cumulative_pages(13); // 2^13-1 region
        let w2 = p2.wasted_fraction(boundary + 1).unwrap();
        assert!(w2 > 0.45, "power-of-two worst case {w2}");
        assert!(w < w2);
    }

    #[test]
    fn waste_decreases_with_size() {
        // "This number decreases as the BLOB size increases" — check the
        // trend over two orders of magnitude (average to smooth jitter at
        // extent boundaries).
        let t = TierTable::new(TierPolicy::Paper {
            tiers_per_level: 5,
            levels: 20,
        });
        let avg_waste = |pages: u64| -> f64 {
            let samples = 16u64;
            (0..samples)
                .map(|i| t.wasted_fraction(pages + i * pages / samples / 2).unwrap())
                .sum::<f64>()
                / samples as f64
        };
        let small = avg_waste(5 * 1024); // ~20 MB
        let large = avg_waste(13 * 1024 * 1024); // ~51 GB
        assert!(
            large < small,
            "waste should shrink with size: {small} -> {large}"
        );
    }

    #[test]
    fn repeated_largest_tier_shares_class() {
        let t = TierTable::new(TierPolicy::Paper {
            tiers_per_level: 2,
            levels: 2,
        });
        // Table: level0: 1,2; level1: 4,6; then repeats 6.
        assert_eq!(t.size_of(0), 1);
        assert_eq!(t.size_of(3), 6);
        assert_eq!(t.size_of(10), 6);
        assert_eq!(t.class_of(10), t.class_of(3));
        assert_ne!(t.class_of(0), t.class_of(1));
    }

    #[test]
    fn blob_too_large_detected() {
        let t = TierTable::new(TierPolicy::Paper {
            tiers_per_level: 2,
            levels: 1,
        });
        assert!(t.extents_for_pages(t.max_pages()).is_some());
        assert!(t.extents_for_pages(t.max_pages() + 1).is_none());
    }
}
