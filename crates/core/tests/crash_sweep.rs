//! Systematic crash-point sweep: arm the fault injector to cut power after
//! every possible number of device writes (including torn final writes),
//! reopen from the surviving bytes, and verify the recovery invariants at
//! every crash point.
//!
//! Invariants checked after every crash:
//! 1. The database opens (recovery never wedges).
//! 2. Data committed *before the checkpoint* is always intact.
//! 3. Any blob visible after recovery has exactly the content that was
//!    committed for it (the SHA-256 validation guarantee) — never a torn
//!    mixture.
//! 4. The database remains fully writable afterwards.

use lobster_core::{Config, Database, RelationKind};
use lobster_storage::{CrashDevice, Device, MemDevice};
use std::sync::Arc;

fn cfg() -> Config {
    Config {
        pool_frames: 2048,
        ..Config::default()
    }
}

/// Sweep-width multiplier for the nightly torture CI job
/// (`LOBSTER_TORTURE_MULT=10`); unset or invalid means 1.
fn torture_mult() -> u64 {
    std::env::var("LOBSTER_TORTURE_MULT")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&m| m >= 1)
        .unwrap_or(1)
}

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut out = vec![0u8; len];
    let mut state = seed | 1;
    for b in &mut out {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *b = state as u8;
    }
    out
}

fn copy_device(src: &MemDevice, capacity: usize) -> Arc<MemDevice> {
    let dst = MemDevice::new(capacity);
    let mut buf = vec![0u8; 1 << 20];
    let mut off = 0u64;
    while off < src.capacity() {
        let n = buf.len().min((src.capacity() - off) as usize);
        src.read_at(&mut buf[..n], off).unwrap();
        dst.write_at(&buf[..n], off).unwrap();
        off += n as u64;
    }
    Arc::new(dst)
}

/// One scenario execution with a crash armed after `crash_after` data-device
/// writes (the trigger write is torn in half). Returns whether the scenario
/// completed before the crash fired.
fn run_scenario(crash_after: u64) -> bool {
    const CAP: usize = 96 << 20;
    let data_dev = Arc::new(CrashDevice::new(MemDevice::new(CAP)));
    let wal_dev = Arc::new(MemDevice::new(32 << 20));

    let stable = pattern(150_000, 1);
    let late_a = pattern(60_000, 2);
    let late_b = pattern(90_000, 3);

    // Phase 1: stable data, checkpointed.
    let db = Database::create(data_dev.clone(), wal_dev.clone(), cfg()).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    {
        let mut t = db.begin();
        t.put_blob(&rel, b"stable", &stable).unwrap();
        t.commit().unwrap();
    }
    db.checkpoint().unwrap();

    // Phase 2: arm the crash, then two more commits and an append.
    data_dev.arm_after_writes(crash_after, 128);
    let completed = (|| -> lobster_types::Result<()> {
        let mut t = db.begin();
        t.put_blob(&rel, b"late_a", &late_a)?;
        t.commit()?;
        let mut t = db.begin();
        t.put_blob(&rel, b"late_b", &late_b)?;
        t.commit()?;
        let mut t = db.begin();
        t.append_blob(&rel, b"late_a", &late_b)?;
        t.commit()?;
        Ok(())
    })()
    .is_ok();
    // Simulate the process dying: no shutdown, no rollback.
    std::mem::forget(db);

    // Phase 3: recover from what physically survived.
    let survivor = copy_device(data_dev.inner(), CAP);
    let (db2, _report) = Database::open(survivor, wal_dev, cfg()).unwrap();
    let rel2 = db2.relation("b").expect("relation survives the checkpoint");

    // Invariant 2: checkpointed data always intact.
    let mut t = db2.begin();
    let got = t.get_blob(&rel2, b"stable", |b| b.to_vec()).unwrap();
    assert_eq!(
        got, stable,
        "crash_after={crash_after}: stable blob damaged"
    );

    // Invariant 3: visible blobs have exactly a committed content version.
    let mut late_a_full = late_a.clone();
    late_a_full.extend_from_slice(&late_b);
    if let Some(state) = t.blob_state(&rel2, b"late_a").unwrap() {
        let got = t.get_blob(&rel2, b"late_a", |b| b.to_vec()).unwrap();
        assert!(
            got == late_a || got == late_a_full,
            "crash_after={crash_after}: late_a is a torn mixture (len {} vs {} / {})",
            got.len(),
            late_a.len(),
            late_a_full.len()
        );
        assert_eq!(state.size as usize, got.len());
    }
    if t.blob_state(&rel2, b"late_b").unwrap().is_some() {
        let got = t.get_blob(&rel2, b"late_b", |b| b.to_vec()).unwrap();
        assert_eq!(got, late_b, "crash_after={crash_after}: late_b torn");
    }
    t.commit().unwrap();

    // Invariant 4: still writable.
    let post = pattern(30_000, 99);
    let mut t = db2.begin();
    t.put_blob(&rel2, b"post_recovery", &post).unwrap();
    t.commit().unwrap();
    let mut t = db2.begin();
    assert_eq!(
        t.get_blob(&rel2, b"post_recovery", |b| b.to_vec()).unwrap(),
        post
    );
    t.commit().unwrap();

    completed
}

#[test]
fn crash_at_every_early_write() {
    // Sweep the first 24 post-checkpoint writes one by one: this covers
    // crashes during the first commit's WAL flush, between WAL fsync and
    // the extent flush (the SHA-validation window), and mid-extent-flush.
    for crash_after in 0..24 * torture_mult() {
        run_scenario(crash_after);
    }
}

#[test]
fn crash_across_later_writes() {
    // Coarser sweep further into the scenario (second commit + append).
    // The torture multiplier widens the sweep rather than repeating it.
    let mut completed_once = false;
    for crash_after in (24..24 + 96 * torture_mult()).step_by(7) {
        completed_once |= run_scenario(crash_after);
    }
    // Sanity: with a late enough crash point the whole scenario commits.
    assert!(
        completed_once || run_scenario(100_000),
        "scenario must complete when the crash never fires"
    );
}

/// Like [`run_scenario`], but the controller *dies* instead of silently
/// dropping writes: every post-crash write and sync returns an error
/// (`CrashDevice::set_fail_after_crash`). The engine surfaces those as
/// clean commit failures, and recovery from the surviving bytes must still
/// land on a SHA-validated state.
fn run_dead_controller_scenario(crash_after: u64) {
    const CAP: usize = 96 << 20;
    let data_dev = Arc::new(CrashDevice::new(MemDevice::new(CAP)));
    data_dev.set_fail_after_crash(true);
    let wal_dev = Arc::new(MemDevice::new(32 << 20));

    let stable = pattern(150_000, 11);
    let late = pattern(70_000, 12);

    let db = Database::create(data_dev.clone(), wal_dev.clone(), cfg()).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    {
        let mut t = db.begin();
        t.put_blob(&rel, b"stable", &stable).unwrap();
        t.commit().unwrap();
    }
    db.checkpoint().unwrap();

    data_dev.arm_after_writes(crash_after, 128);
    // Post-crash commits now *error* (dead controller) rather than being
    // silently absorbed; either way the process must not panic or hang.
    let _ = (|| -> lobster_types::Result<()> {
        let mut t = db.begin();
        t.put_blob(&rel, b"late", &late)?;
        t.commit()?;
        let mut t = db.begin();
        t.append_blob(&rel, b"late", &stable)?;
        t.commit()?;
        Ok(())
    })();
    std::mem::forget(db);

    // Recover from what physically reached the medium before the crash.
    let survivor = copy_device(data_dev.inner(), CAP);
    let (db2, _report) = Database::open(survivor, wal_dev, cfg()).unwrap();
    let rel2 = db2.relation("b").expect("relation survives the checkpoint");

    let mut t = db2.begin();
    let got = t.get_blob(&rel2, b"stable", |b| b.to_vec()).unwrap();
    assert_eq!(
        got, stable,
        "crash_after={crash_after}: checkpointed blob damaged by a dead controller"
    );
    // SHA validation: any visible version of `late` is a committed one.
    let mut late_full = late.clone();
    late_full.extend_from_slice(&stable);
    if t.blob_state(&rel2, b"late").unwrap().is_some() {
        let got = t.get_blob(&rel2, b"late", |b| b.to_vec()).unwrap();
        assert!(
            got == late || got == late_full,
            "crash_after={crash_after}: late is a torn mixture after dead-controller crash"
        );
    }
    t.commit().unwrap();

    // The recovered database is fully writable.
    let post = pattern(25_000, 13);
    let mut t = db2.begin();
    t.put_blob(&rel2, b"post", &post).unwrap();
    t.commit().unwrap();
    let mut t = db2.begin();
    assert_eq!(t.get_blob(&rel2, b"post", |b| b.to_vec()).unwrap(), post);
    t.commit().unwrap();
}

#[test]
fn dead_controller_crash_sweep() {
    // Sweep crash points where post-crash writes *error* instead of being
    // dropped: commit failures must surface cleanly, and recovery must
    // still land on the SHA-validated state.
    for crash_after in (0..20 * torture_mult()).step_by(3) {
        run_dead_controller_scenario(crash_after);
    }
}

#[test]
fn torn_wal_write_rolls_back_cleanly() {
    // Crash on the WAL device instead: the commit record is half-written,
    // so recovery must treat the transaction as uncommitted.
    const CAP: usize = 64 << 20;
    let data_dev = Arc::new(MemDevice::new(CAP));
    let wal_dev = Arc::new(CrashDevice::new(MemDevice::new(16 << 20)));

    let db = Database::create(data_dev.clone(), wal_dev.clone(), cfg()).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let good = pattern(40_000, 5);
    {
        let mut t = db.begin();
        t.put_blob(&rel, b"good", &good).unwrap();
        t.commit().unwrap();
    }
    // Tear the very next WAL write in half.
    wal_dev.arm_after_writes(0, 128);
    let mut t = db.begin();
    t.put_blob(&rel, b"torn", &pattern(50_000, 6)).unwrap();
    let _ = t.commit(); // may "succeed" from the app's view — device lied
    std::mem::forget(db);

    let surviving_wal = copy_device(wal_dev.inner(), 16 << 20);
    let (db2, _) = Database::open(data_dev, surviving_wal, cfg()).unwrap();
    let rel2 = db2.relation("b").unwrap();
    let mut t = db2.begin();
    assert_eq!(t.get_blob(&rel2, b"good", |b| b.to_vec()).unwrap(), good);
    assert!(
        t.blob_state(&rel2, b"torn").unwrap().is_none(),
        "a torn commit record must roll the transaction back"
    );
    t.commit().unwrap();
}
