use crate::{ExtentSpec, TierTable};
use lobster_sync::Arc;
use lobster_sync::Mutex;
use lobster_types::{Error, Pid, Result};
use std::collections::BTreeMap;

/// Contiguous-range allocator with segregated (exact-size) free lists,
/// a bump region, and best-fit splitting for arbitrary sizes.
///
/// Because tier sizes are static, freed tier extents are recycled by exact
/// size in O(1) — the property §V-G's experiment (Figure 11) relies on for
/// stable performance at high storage utilization. Arbitrary sizes (tail
/// extents, buffer-frame runs) fall back to best-fit over the free map.
pub struct RangeAllocator {
    inner: Mutex<Inner>,
    capacity: u64,
}

struct Inner {
    /// Next never-allocated unit.
    bump: u64,
    /// Exact-size free lists: size → start addresses.
    free: BTreeMap<u64, Vec<u64>>,
    /// Units currently free (inside `free`).
    free_units: u64,
}

impl RangeAllocator {
    /// Manage the address space `[0, capacity)`.
    pub fn new(capacity: u64) -> Self {
        RangeAllocator {
            inner: Mutex::new(Inner {
                bump: 0,
                free: BTreeMap::new(),
                free_units: 0,
            }),
            capacity,
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Units handed out and not yet freed.
    pub fn in_use(&self) -> u64 {
        let g = self.inner.lock();
        g.bump - g.free_units
    }

    /// Number of free fragments on the free lists (a fragmentation gauge:
    /// allocation searches scale with it).
    pub fn fragment_count(&self) -> usize {
        let g = self.inner.lock();
        g.free.values().map(|v| v.len()).sum()
    }

    /// Every free run as `(start, len)`, sorted by start, with adjacent
    /// runs coalesced and the untouched bump tail included as one final
    /// run. This is the allocator's *geometry*: the defragmenter scores
    /// placement quality from the run-length distribution.
    pub fn free_runs(&self) -> Vec<(u64, u64)> {
        let g = self.inner.lock();
        let mut runs: Vec<(u64, u64)> = Vec::with_capacity(g.free_units as usize / 4 + 1);
        for (&len, starts) in &g.free {
            for &s in starts {
                runs.push((s, len));
            }
        }
        runs.sort_unstable();
        // Coalesce: the exact-size lists fragment a hole of size 5 into
        // entries [x,2] + [x+2,3]; geometrically it is one run.
        let mut coalesced: Vec<(u64, u64)> = Vec::with_capacity(runs.len());
        for (s, l) in runs {
            match coalesced.last_mut() {
                Some((ps, pl)) if *ps + *pl == s => *pl += l,
                _ => coalesced.push((s, l)),
            }
        }
        if g.bump < self.capacity {
            match coalesced.last_mut() {
                Some((ps, pl)) if *ps + *pl == g.bump => *pl += self.capacity - g.bump,
                _ => coalesced.push((g.bump, self.capacity - g.bump)),
            }
        }
        coalesced
    }

    /// Fragmentation score in `[0, 1)` from the free-run-length
    /// distribution: `1 - sqrt(Σ len²) / Σ len`. One contiguous free run
    /// scores 0; `n` equal scattered runs score `1 - 1/√n`, climbing
    /// toward 1 as free space shatters. With no free space at all the
    /// score is 0 (nothing to fragment).
    pub fn fragmentation_score(&self) -> f64 {
        let runs = self.free_runs();
        let total: u64 = runs.iter().map(|&(_, l)| l).sum();
        if total == 0 {
            return 0.0;
        }
        let sumsq: f64 = runs.iter().map(|&(_, l)| (l as f64) * (l as f64)).sum();
        1.0 - sumsq.sqrt() / total as f64
    }

    /// Fraction of the address space handed out (including fragmentation
    /// holes inside the bump region that sit on free lists).
    pub fn utilization(&self) -> f64 {
        self.in_use() as f64 / self.capacity as f64
    }

    /// Allocate `size` contiguous units: exact-size free list first (O(1)),
    /// then the bump region, then best-fit splitting of a larger free range.
    pub fn allocate(&self, size: u64) -> Result<u64> {
        assert!(size > 0);
        let mut g = self.inner.lock();
        // 1. Exact-size reuse.
        if let Some(list) = g.free.get_mut(&size) {
            if let Some(start) = list.pop() {
                if list.is_empty() {
                    g.free.remove(&size);
                }
                g.free_units -= size;
                return Ok(start);
            }
        }
        // 2. Fresh range.
        if g.bump + size <= self.capacity {
            let start = g.bump;
            g.bump += size;
            return Ok(start);
        }
        // 3. Best fit: smallest free range that is large enough, splitting
        //    the remainder back.
        let found = g
            .free
            .range(size..)
            .next()
            .map(|(&range_size, _)| range_size);
        if let Some(range_size) = found {
            let list = g.free.get_mut(&range_size).expect("present");
            let start = list.pop().expect("non-empty list");
            if list.is_empty() {
                g.free.remove(&range_size);
            }
            let leftover = range_size - size;
            if leftover > 0 {
                g.free.entry(leftover).or_default().push(start + size);
            }
            g.free_units -= size;
            return Ok(start);
        }
        Err(Error::OutOfSpace)
    }

    /// Return a previously allocated range.
    pub fn free(&self, start: u64, size: u64) {
        assert!(size > 0 && start + size <= self.capacity);
        let mut g = self.inner.lock();
        debug_assert!(start + size <= g.bump, "freeing never-allocated range");
        g.free.entry(size).or_default().push(start);
        g.free_units += size;
    }

    /// Merge adjacent free ranges into maximal runs and absorb a run
    /// ending at the bump pointer back into the bump region. The
    /// exact-size free lists recycle fixed tier sizes in O(1) but never
    /// merge neighbours, so long create/delete churn with mixed sizes
    /// shatters free space until large contiguous requests fail even at
    /// moderate utilization — the aging decay the defragmenter repairs.
    /// Returns the number of merges performed.
    pub fn coalesce(&self) -> usize {
        let mut g = self.inner.lock();
        let mut runs: Vec<(u64, u64)> = Vec::with_capacity(g.free.len() * 2);
        for (&len, starts) in &g.free {
            for &s in starts {
                runs.push((s, len));
            }
        }
        if runs.is_empty() {
            return 0;
        }
        runs.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(runs.len());
        let mut merges = 0usize;
        for (s, l) in runs {
            match merged.last_mut() {
                Some((ps, pl)) if *ps + *pl == s => {
                    *pl += l;
                    merges += 1;
                }
                _ => merged.push((s, l)),
            }
        }
        // A maximal run ending exactly at the bump pointer rejoins the
        // never-allocated region: future allocations of any size can carve
        // it, not just best-fit matches.
        if let Some(&(ls, ll)) = merged.last() {
            if ls + ll == g.bump {
                merged.pop();
                g.bump = ls;
                g.free_units -= ll;
                merges += 1;
            }
        }
        g.free.clear();
        for (s, l) in merged {
            g.free.entry(l).or_default().push(s);
        }
        merges
    }

    /// Reset the allocator so exactly `used` ranges are allocated: the bump
    /// pointer moves past the highest used unit and every hole below it
    /// becomes a free range. Used by recovery, which rediscovers the live
    /// ranges by walking all relation trees and Blob States.
    pub fn reset_from_used(&self, used: &mut [(u64, u64)]) {
        used.sort_unstable();
        let mut g = self.inner.lock();
        g.free.clear();
        g.free_units = 0;
        let mut cursor = 0u64;
        for &(start, len) in used.iter() {
            debug_assert!(start >= cursor, "overlapping used ranges at {start}");
            if start > cursor {
                let hole = start - cursor;
                g.free.entry(hole).or_default().push(cursor);
                g.free_units += hole;
            }
            cursor = start + len;
        }
        g.bump = cursor;
    }
}

/// Page-space allocator for tiered extents and tail extents.
///
/// Addresses are `Pid`s offset by `base` (the first page available for
/// extent data, after the engine's metadata region).
pub struct ExtentAllocator {
    table: Arc<TierTable>,
    ranges: RangeAllocator,
    base: u64,
    /// Quarantined pid ranges, keyed `start pid → pages`: a `free_extent`
    /// whose range *overlaps* any fenced range parks the extent instead of
    /// returning it to the free lists, so storage under corruption
    /// investigation is never re-allocated. Keying on the full range (not
    /// just the start pid) closes the hole where a later free whose range
    /// overlapped only a fenced extent's tail slipped past the fence.
    quarantined: Mutex<BTreeMap<u64, u64>>,
}

/// Does `[start, start + pages)` overlap any fenced range in `q`?
fn overlaps_fence(q: &BTreeMap<u64, u64>, start: u64, pages: u64) -> bool {
    // The only candidate is the fenced range with the greatest start pid
    // strictly below our end; ranges never overlap each other.
    match q.range(..start + pages).next_back() {
        Some((&qs, &qp)) => qs + qp > start,
        None => false,
    }
}

impl ExtentAllocator {
    pub fn new(table: Arc<TierTable>, base: Pid, page_capacity: u64) -> Self {
        assert!(page_capacity > base.raw());
        ExtentAllocator {
            table,
            ranges: RangeAllocator::new(page_capacity - base.raw()),
            base: base.raw(),
            quarantined: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn table(&self) -> &Arc<TierTable> {
        &self.table
    }

    /// Allocate the extent at sequence position `pos` (its size comes from
    /// the tier table).
    pub fn allocate_tier(&self, pos: usize) -> Result<ExtentSpec> {
        let pages = self.table.size_of(pos);
        let start = self.ranges.allocate(pages)?;
        Ok(ExtentSpec::new(Pid::new(self.base + start), pages))
    }

    /// Allocate an arbitrarily-sized tail extent.
    pub fn allocate_tail(&self, pages: u64) -> Result<ExtentSpec> {
        let start = self.ranges.allocate(pages)?;
        Ok(ExtentSpec::new(Pid::new(self.base + start), pages))
    }

    /// Release an extent (tier or tail) back to the free lists. Callers do
    /// this at transaction commit, after moving extents from the
    /// transaction's temporary list (§III-D "BLOB deletion").
    ///
    /// Quarantined extents are parked instead: they stay accounted as
    /// in-use and are never handed out again until
    /// [`ExtentAllocator::release_quarantine`] lifts the fence.
    pub fn free_extent(&self, extent: ExtentSpec) {
        if overlaps_fence(&self.quarantined.lock(), extent.start.raw(), extent.pages) {
            return;
        }
        self.ranges
            .free(extent.start.raw() - self.base, extent.pages);
    }

    /// Fence an extent from re-allocation: once its current owner frees
    /// it, the pages are parked rather than recycled (verify-on-read
    /// corruption quarantine). Idempotent: re-fencing the same extent —
    /// or a longer range at the same start — widens the fence, never
    /// narrows it.
    pub fn quarantine_extent(&self, extent: ExtentSpec) {
        let mut q = self.quarantined.lock();
        let entry = q.entry(extent.start.raw()).or_insert(0);
        *entry = (*entry).max(extent.pages);
    }

    /// Lift the fence on a quarantined extent *without* freeing it; the
    /// owner (or an operator tool) frees it explicitly afterwards.
    pub fn release_quarantine(&self, extent: ExtentSpec) {
        self.quarantined.lock().remove(&extent.start.raw());
    }

    /// Is this extent currently fenced from re-allocation (does its pid
    /// range overlap any fenced range)?
    pub fn is_quarantined(&self, extent: &ExtentSpec) -> bool {
        overlaps_fence(&self.quarantined.lock(), extent.start.raw(), extent.pages)
    }

    /// Number of extents currently fenced.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.lock().len()
    }

    /// Rebuild allocation state from the set of live extents (recovery).
    pub fn reset_from_extents(&self, extents: &[ExtentSpec]) {
        let mut used: Vec<(u64, u64)> = extents
            .iter()
            .map(|e| (e.start.raw() - self.base, e.pages))
            .collect();
        self.ranges.reset_from_used(&mut used);
    }

    /// Pages handed out and not yet freed.
    pub fn pages_in_use(&self) -> u64 {
        self.ranges.in_use()
    }

    /// Fragmentation score of the managed page space (see
    /// [`RangeAllocator::fragmentation_score`]).
    pub fn fragmentation_score(&self) -> f64 {
        self.ranges.fragmentation_score()
    }

    /// Free-run geometry of the managed page space, in allocator-local
    /// units (add `base` for pids).
    pub fn free_runs(&self) -> Vec<(u64, u64)> {
        self.ranges.free_runs()
    }

    /// Merge adjacent free ranges (see [`RangeAllocator::coalesce`]).
    pub fn coalesce_free_space(&self) -> usize {
        self.ranges.coalesce()
    }

    /// Fraction of the managed page space in use.
    pub fn utilization(&self) -> f64 {
        self.ranges.utilization()
    }

    /// Pages the allocator manages in total.
    pub fn page_capacity(&self) -> u64 {
        self.ranges.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TierPolicy;

    #[test]
    fn bump_then_reuse() {
        let a = RangeAllocator::new(100);
        let x = a.allocate(10).unwrap();
        let y = a.allocate(10).unwrap();
        assert_ne!(x, y);
        a.free(x, 10);
        let z = a.allocate(10).unwrap();
        assert_eq!(z, x, "exact-size free list must be preferred");
        assert_eq!(a.in_use(), 20);
    }

    #[test]
    fn best_fit_split_when_bump_exhausted() {
        let a = RangeAllocator::new(32);
        let big = a.allocate(24).unwrap();
        let _small = a.allocate(8).unwrap();
        a.free(big, 24);
        // Bump region is exhausted; a 10-unit request must split the free 24.
        let s = a.allocate(10).unwrap();
        assert_eq!(s, big);
        // Remaining 14-unit hole is still allocatable.
        let t = a.allocate(14).unwrap();
        assert_eq!(t, big + 10);
        assert!(a.allocate(1).is_err());
    }

    #[test]
    fn out_of_space() {
        let a = RangeAllocator::new(10);
        assert!(a.allocate(11).is_err());
        a.allocate(10).unwrap();
        assert!(a.allocate(1).is_err());
    }

    #[test]
    fn utilization_tracks_in_use() {
        let a = RangeAllocator::new(100);
        assert_eq!(a.utilization(), 0.0);
        let x = a.allocate(50).unwrap();
        assert!((a.utilization() - 0.5).abs() < 1e-9);
        a.free(x, 50);
        assert_eq!(a.utilization(), 0.0);
    }

    #[test]
    fn extent_allocator_tiers_and_tails() {
        let table = Arc::new(TierTable::new(TierPolicy::default()));
        let alloc = ExtentAllocator::new(table, Pid::new(8), 1000);
        let e0 = alloc.allocate_tier(0).unwrap();
        assert_eq!(e0.pages, 1);
        assert!(e0.start.raw() >= 8);
        let e1 = alloc.allocate_tier(1).unwrap();
        assert_eq!(e1.pages, 2);
        let tail = alloc.allocate_tail(5).unwrap();
        assert_eq!(tail.pages, 5);
        assert_eq!(alloc.pages_in_use(), 8);

        alloc.free_extent(e1);
        let e1b = alloc.allocate_tier(1).unwrap();
        assert_eq!(e1b.start, e1.start, "tier extent recycled exactly");
    }

    #[test]
    fn quarantined_extent_is_never_recycled() {
        let table = Arc::new(TierTable::new(TierPolicy::default()));
        let alloc = ExtentAllocator::new(table, Pid::new(0), 1000);
        let e = alloc.allocate_tier(1).unwrap();
        let in_use = alloc.pages_in_use();
        alloc.quarantine_extent(e);
        assert!(alloc.is_quarantined(&e));
        assert_eq!(alloc.quarantined_count(), 1);
        alloc.free_extent(e); // parked, not recycled
        assert_eq!(
            alloc.pages_in_use(),
            in_use,
            "quarantined pages stay in use"
        );
        let e2 = alloc.allocate_tier(1).unwrap();
        assert_ne!(e2.start, e.start, "fenced extent must not be handed out");
        // Lifting the fence makes an explicit free effective again.
        alloc.release_quarantine(e);
        alloc.free_extent(e);
        let e3 = alloc.allocate_tier(1).unwrap();
        assert_eq!(e3.start, e.start);
    }

    #[test]
    fn fence_covers_full_pid_range_not_just_start() {
        // The PR 10 satellite fix: a free whose range overlaps only the
        // *tail* of a fenced extent must be parked too. Before the fix the
        // fence was keyed on the start pid alone and such frees slipped
        // straight back onto the free lists.
        let table = Arc::new(TierTable::new(TierPolicy::default()));
        let alloc = ExtentAllocator::new(table, Pid::new(0), 1000);
        let big = alloc.allocate_tail(8).unwrap();
        alloc.quarantine_extent(big);
        let in_use = alloc.pages_in_use();
        // A free of the tail half (different start pid, overlapping range).
        let tail_half = ExtentSpec::new(Pid::new(big.start.raw() + 4), 4);
        assert!(alloc.is_quarantined(&tail_half), "overlap must be fenced");
        alloc.free_extent(tail_half);
        assert_eq!(
            alloc.pages_in_use(),
            in_use,
            "a free overlapping a fenced extent's tail must be parked"
        );
        // A free overlapping the head from below is fenced as well.
        let straddle_head = ExtentSpec::new(big.start, 2);
        alloc.free_extent(straddle_head);
        assert_eq!(alloc.pages_in_use(), in_use);
        // A disjoint neighbour is not fenced.
        let disjoint = ExtentSpec::new(Pid::new(big.start.raw() + 8), 4);
        assert!(!alloc.is_quarantined(&disjoint));
    }

    #[test]
    fn double_quarantine_is_idempotent() {
        let table = Arc::new(TierTable::new(TierPolicy::default()));
        let alloc = ExtentAllocator::new(table, Pid::new(0), 1000);
        let e = alloc.allocate_tier(2).unwrap();
        alloc.quarantine_extent(e);
        alloc.quarantine_extent(e);
        assert_eq!(alloc.quarantined_count(), 1, "re-fencing must not stack");
        let in_use = alloc.pages_in_use();
        alloc.free_extent(e);
        assert_eq!(alloc.pages_in_use(), in_use);
        // One release lifts the fence completely.
        alloc.release_quarantine(e);
        assert!(!alloc.is_quarantined(&e));
        alloc.free_extent(e);
        let again = alloc.allocate_tier(2).unwrap();
        assert_eq!(again.start, e.start, "released pages recycle exactly");
    }

    #[test]
    fn quarantine_release_reallocation_round_trip() {
        let table = Arc::new(TierTable::new(TierPolicy::default()));
        let alloc = ExtentAllocator::new(table, Pid::new(0), 1000);
        let e = alloc.allocate_tier(3).unwrap();
        alloc.quarantine_extent(e);
        alloc.free_extent(e); // parked
        let other = alloc.allocate_tier(3).unwrap();
        assert_ne!(other.start, e.start);
        alloc.release_quarantine(e);
        alloc.free_extent(e);
        let reused = alloc.allocate_tier(3).unwrap();
        assert_eq!(reused.start, e.start, "round trip must re-allocate");
        assert_eq!(alloc.quarantined_count(), 0);
    }

    #[test]
    fn free_runs_and_fragmentation_score() {
        let a = RangeAllocator::new(100);
        assert_eq!(a.free_runs(), vec![(0, 100)], "fresh space is one run");
        assert_eq!(a.fragmentation_score(), 0.0);
        // Carve out ranges and free every other one: scattered holes.
        let xs: Vec<u64> = (0..10).map(|_| a.allocate(10).unwrap()).collect();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.free(x, 10);
            }
        }
        let runs = a.free_runs();
        assert_eq!(runs.len(), 5, "five scattered 10-unit holes: {runs:?}");
        let scattered = a.fragmentation_score();
        assert!(scattered > 0.0 && scattered < 1.0);
        // Freeing the rest coalesces everything into one run again.
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 1 {
                a.free(x, 10);
            }
        }
        assert_eq!(a.free_runs(), vec![(0, 100)]);
        assert_eq!(a.fragmentation_score(), 0.0);
        assert!(scattered > a.fragmentation_score());
    }

    #[test]
    fn coalesce_merges_neighbours_and_rejoins_bump() {
        let a = RangeAllocator::new(100);
        let xs: Vec<u64> = (0..10).map(|_| a.allocate(10).unwrap()).collect();
        for &x in &xs {
            a.free(x, 10);
        }
        // All freed, but the exact-size lists hold ten separate 10-unit
        // entries: a 20-unit request cannot be satisfied.
        assert!(a.allocate(20).is_err(), "shattered free lists");
        let merges = a.coalesce();
        assert!(merges > 0);
        // Everything merged and absorbed back into the bump region.
        assert_eq!(a.free_runs(), vec![(0, 100)]);
        assert_eq!(a.in_use(), 0);
        let big = a.allocate(64).unwrap();
        assert_eq!(big, 0);
        a.free(big, 64);
    }

    #[test]
    fn coalesce_preserves_used_ranges() {
        let a = RangeAllocator::new(100);
        let xs: Vec<u64> = (0..10).map(|_| a.allocate(10).unwrap()).collect();
        // Free every other range: holes cannot merge across live ranges.
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.free(x, 10);
            }
        }
        let before = a.in_use();
        a.coalesce();
        assert_eq!(a.in_use(), before);
        assert_eq!(a.free_runs().len(), 5, "live ranges keep holes apart");
        // Live ranges must still be intact: allocating over them is
        // impossible because best-fit only hands out free space.
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 1 {
                a.free(x, 10);
            }
            let _ = i;
            let _ = x;
        }
        a.coalesce();
        assert_eq!(a.free_runs(), vec![(0, 100)]);
    }

    #[test]
    fn stable_reuse_at_high_utilization() {
        // Mimic Figure 11: alternating alloc/free must keep succeeding at
        // high utilization because free lists recycle exact sizes.
        let table = Arc::new(TierTable::new(TierPolicy::default()));
        let alloc = ExtentAllocator::new(table, Pid::new(0), 4096);
        let mut live: Vec<ExtentSpec> = Vec::new();
        // Fill to ~90 %.
        while alloc.utilization() < 0.9 {
            match alloc.allocate_tier(4) {
                Ok(e) => live.push(e),
                Err(_) => break,
            }
        }
        let before = alloc.utilization();
        // Churn: free one, allocate one, 1000 times.
        for i in 0..1000 {
            let e = live.swap_remove(i % live.len());
            alloc.free_extent(e);
            live.push(alloc.allocate_tier(4).expect("reuse must succeed"));
        }
        assert!((alloc.utilization() - before).abs() < 1e-9);
    }

    #[test]
    fn concurrent_allocation_is_disjoint() {
        let a = Arc::new(RangeAllocator::new(100_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| a.allocate(7).unwrap()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        for w in all.windows(2) {
            assert!(w[1] - w[0] >= 7, "ranges {} and {} overlap", w[0], w[1]);
        }
    }
}
