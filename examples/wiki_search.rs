//! A Wikipedia-style article store (§V-D / §V-H in miniature): bulk-load a
//! synthetic corpus, serve view-weighted reads, and contrast the Blob
//! State index with a MySQL-style prefix index on the same articles.
//!
//! ```text
//! cargo run --release --example wiki_search
//! ```

use lobster::btree::LexCmp;
use lobster::core::{BlobStateCmp, Config, Database, RelationKind};
use lobster::storage::MemDevice;
use lobster::workloads::WikiCorpus;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

const ARTICLES: usize = 3_000;
const MYSQL_PREFIX_LIMIT: usize = 767;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::create(
        Arc::new(MemDevice::new(512 << 20)),
        Arc::new(MemDevice::new(128 << 20)),
        Config {
            pool_frames: 32 * 1024, // 128 MiB
            ..Config::default()
        },
    )?;
    let articles = db.create_relation("article", RelationKind::Blob)?;

    // ---- Bulk load the corpus ---------------------------------------------
    let corpus = WikiCorpus::new(ARTICLES, 42);
    println!(
        "loading {} articles ({:.1} MiB, {:.0}% larger than MySQL's {}B prefix limit)…",
        corpus.len(),
        corpus.total_bytes() as f64 / (1 << 20) as f64,
        corpus.fraction_larger_than(MYSQL_PREFIX_LIMIT) * 100.0,
        MYSQL_PREFIX_LIMIT,
    );
    let t0 = Instant::now();
    for i in 0..corpus.len() {
        let mut txn = db.begin();
        txn.put_blob(
            &articles,
            corpus.articles()[i].title.as_bytes(),
            &corpus.body(i),
        )?;
        txn.commit()?;
    }
    println!("loaded in {:?}", t0.elapsed());

    // ---- View-weighted read serving (§V-D) --------------------------------
    let mut rng = StdRng::seed_from_u64(7);
    let t0 = Instant::now();
    let reads = 5_000;
    let mut bytes = 0u64;
    for _ in 0..reads {
        let i = corpus.sample_by_views(&mut rng);
        let mut txn = db.begin();
        bytes += txn.get_blob(&articles, corpus.articles()[i].title.as_bytes(), |b| {
            b.len() as u64
        })?;
        txn.commit()?;
    }
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "served {reads} view-weighted reads: {:.0} reads/s, {:.1} MiB/s",
        reads as f64 / secs,
        bytes as f64 / (1 << 20) as f64 / secs
    );

    // ---- Content indexing: Blob State index vs 1K-prefix index (§V-H) -----
    println!("\nbuilding content indexes…");
    let t0 = Instant::now();
    let state_index = db.create_relation_with(
        "article_by_content",
        RelationKind::Kv,
        BlobStateCmp::new(&db),
        1,
    )?;
    let mut txn = db.begin();
    for i in 0..corpus.len() {
        let title = corpus.articles()[i].title.clone();
        let state = txn
            .blob_state(&articles, title.as_bytes())?
            .expect("loaded");
        state_index
            .tree
            .insert(&state.encode(), title.as_bytes(), false)?;
    }
    txn.commit()?;
    let blob_index_time = t0.elapsed();

    let t0 = Instant::now();
    let prefix_index =
        db.create_relation_with("article_by_prefix", RelationKind::Kv, Arc::new(LexCmp), 1)?;
    let mut misses = 0u64;
    for i in 0..corpus.len() {
        let body = corpus.body(i);
        let key = &body[..body.len().min(MYSQL_PREFIX_LIMIT)];
        if prefix_index
            .tree
            .insert(key, corpus.articles()[i].title.as_bytes(), false)
            .is_err()
        {
            misses += 1; // identical prefix already indexed: unservable
        }
    }
    let prefix_index_time = t0.elapsed();

    let si = state_index.tree.stats()?;
    let pi = prefix_index.tree.stats()?;
    println!(
        "  {:<16} miss={:>5.1}%  build={:>8.1?}  size={:>6.1} MiB  leaves={}",
        "Blob State",
        0.0,
        blob_index_time,
        si.capacity_bytes as f64 / (1 << 20) as f64,
        si.leaves
    );
    println!(
        "  {:<16} miss={:>5.1}%  build={:>8.1?}  size={:>6.1} MiB  leaves={}",
        "1K Prefix",
        misses as f64 * 100.0 / corpus.len() as f64,
        prefix_index_time,
        pi.capacity_bytes as f64 / (1 << 20) as f64,
        pi.leaves
    );

    // ---- Point query through the Blob State index --------------------------
    let probe_title = &corpus.articles()[123].title;
    let mut txn = db.begin();
    let probe_state = txn.blob_state(&articles, probe_title.as_bytes())?.unwrap();
    txn.commit()?;
    let found = state_index.tree.lookup(&probe_state.encode())?;
    println!(
        "\ncontent lookup for '{probe_title}' -> {:?}",
        found.map(|v| String::from_utf8_lossy(&v).into_owned())
    );
    assert_eq!(found_as_string(&state_index, &probe_state)?, *probe_title);
    Ok(())
}

fn found_as_string(
    index: &lobster::core::Relation,
    state: &lobster::core::BlobState,
) -> Result<String, Box<dyn std::error::Error>> {
    Ok(String::from_utf8(
        index.tree.lookup(&state.encode())?.expect("indexed"),
    )?)
}
