//! Unified facade over the two buffer-pool variants the paper compares:
//! the vmcache-style [`ExtentPool`] (with aliasing) and the traditional
//! [`HashTablePool`] (`Our.ht`). The engine is written against this enum so
//! the two variants can be swapped by configuration.

use crate::htpool::{HashTablePool, HtFlushBatch};
use crate::pool::{ExtentFlushBatch, ExtentPool, FlushItem};
use lobster_extent::ExtentSpec;
use lobster_metrics::Metrics;
use lobster_sync::Arc;
use lobster_types::{Pid, Result};

/// The active BLOB buffer pool.
#[derive(Clone)]
pub enum BlobPool {
    /// vmcache-style pool: extent-granular translation/latching, zero-copy
    /// aliasing reads.
    Vm(Arc<ExtentPool>),
    /// Hash-table pool: per-page translation, malloc+memcpy reads.
    Ht(Arc<HashTablePool>),
}

impl BlobPool {
    pub fn metrics(&self) -> &Metrics {
        match self {
            BlobPool::Vm(p) => p.metrics(),
            BlobPool::Ht(p) => p.metrics(),
        }
    }

    /// The latch/pin ledger of the underlying pool (no-op in release builds).
    pub fn audit(&self) -> &lobster_sync::audit::LatchLedger {
        match self {
            BlobPool::Vm(p) => p.audit(),
            BlobPool::Ht(p) => p.audit(),
        }
    }

    /// Page size of the underlying geometry.
    pub fn page_size(&self) -> usize {
        match self {
            BlobPool::Vm(p) => p.geometry().page_size(),
            BlobPool::Ht(p) => p.page_size(),
        }
    }

    /// Write fresh content into a newly allocated extent. The extent is
    /// left dirty and pinned (`prevent_evict`) until the commit-time flush.
    pub fn fill_extent(&self, spec: ExtentSpec, src: &[u8]) -> Result<()> {
        match self {
            BlobPool::Vm(p) => {
                let mut g = p.create_extent(spec)?;
                g[..src.len()].copy_from_slice(src);
                p.metrics().bump_memcpy(src.len() as u64);
                g.mark_dirty();
                g.set_prevent_evict();
                Ok(())
            }
            BlobPool::Ht(p) => p.fill_extent(spec, src),
        }
    }

    /// [`BlobPool::fill_extent`] fused with content hashing: `digest` sees
    /// every copied chunk while its bytes are still hot in cache, so the
    /// put path makes one pass over `src` instead of memcpy-then-rehash.
    pub fn fill_extent_hashed(
        &self,
        spec: ExtentSpec,
        src: &[u8],
        digest: &mut dyn FnMut(&[u8]),
    ) -> Result<()> {
        match self {
            BlobPool::Vm(p) => {
                let mut g = p.create_extent(spec)?;
                // Cache-height blocks: large enough to amortize the digest
                // call, small enough that the copied bytes are still in L1/L2
                // when hashed.
                const BLOCK: usize = 64 * 1024;
                let dst = &mut g[..src.len()];
                for (d, s) in dst.chunks_mut(BLOCK).zip(src.chunks(BLOCK)) {
                    d.copy_from_slice(s);
                    digest(d);
                }
                p.metrics().bump_memcpy(src.len() as u64);
                g.mark_dirty();
                g.set_prevent_evict();
                Ok(())
            }
            BlobPool::Ht(p) => p.fill_extent_hashed(spec, src, digest),
        }
    }

    /// Overwrite `src` at byte offset `byte_off` within an extent,
    /// loading prior content from the device when `load_existing` (needed
    /// for growth into a partially filled extent).
    pub fn write_range(
        &self,
        spec: ExtentSpec,
        byte_off: usize,
        src: &[u8],
        load_existing: bool,
    ) -> Result<()> {
        match self {
            BlobPool::Vm(p) => {
                let mut g = if load_existing {
                    p.write_extent(spec)?
                } else {
                    p.create_extent(spec)?
                };
                g[byte_off..byte_off + src.len()].copy_from_slice(src);
                p.metrics().bump_memcpy(src.len() as u64);
                g.mark_dirty();
                g.set_prevent_evict();
                Ok(())
            }
            BlobPool::Ht(p) => p.write_range(spec, byte_off, src, load_existing),
        }
    }

    /// Like [`BlobPool::write_range`] with `load_existing`, but only the
    /// first `valid_pages` pages hold prior content worth loading (growth
    /// into a partially filled extent).
    pub fn write_range_partial(
        &self,
        spec: ExtentSpec,
        byte_off: usize,
        src: &[u8],
        valid_pages: u64,
    ) -> Result<()> {
        match self {
            BlobPool::Vm(p) => {
                let mut g = p.write_extent_partial(spec, valid_pages)?;
                g[byte_off..byte_off + src.len()].copy_from_slice(src);
                p.metrics().bump_memcpy(src.len() as u64);
                g.mark_dirty();
                g.set_prevent_evict();
                Ok(())
            }
            // The hash-table pool already loads per page.
            BlobPool::Ht(p) => p.write_range(spec, byte_off, src, true),
        }
    }

    /// Present the BLOB as one contiguous slice to `f`; zero-copy when the
    /// vmcache pool has aliasing, gathered otherwise.
    pub fn read_blob<R>(
        &self,
        worker: usize,
        extents: &[ExtentSpec],
        len: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        match self {
            BlobPool::Vm(p) => p.read_blob(worker, extents, len, f),
            BlobPool::Ht(p) => p.read_blob(extents, len, f),
        }
    }

    /// Hint that `specs` will likely be read soon. The vmcache pool issues
    /// an asynchronous readahead batch; the hash-table pool ignores the hint
    /// (its batched fault path already covers whole-BLOB reads, and §V-E's
    /// baseline comparison should not gain speculative I/O it never had).
    /// Never blocks and never evicts to make room.
    pub fn prefetch(&self, specs: &[ExtentSpec]) {
        match self {
            BlobPool::Vm(p) => p.prefetch(specs),
            BlobPool::Ht(_) => {}
        }
    }

    /// Read a small range of one extent without forcing residency (the
    /// append path's final-partial-block read).
    pub fn read_range_uncached(
        &self,
        spec: ExtentSpec,
        byte_off: usize,
        out: &mut [u8],
    ) -> Result<()> {
        match self {
            BlobPool::Vm(p) => p.read_range_uncached(spec, byte_off, out),
            // The hash-table pool is page-granular already.
            BlobPool::Ht(p) => p.read_range(spec, byte_off, out),
        }
    }

    /// Visit the BLOB extent by extent (incremental comparator path).
    pub fn for_each_extent<R>(
        &self,
        extents: &[ExtentSpec],
        len: u64,
        f: impl FnMut(&[u8]) -> Option<R>,
    ) -> Result<Option<R>> {
        match self {
            BlobPool::Vm(p) => p.for_each_extent(extents, len, f),
            BlobPool::Ht(p) => p.for_each_extent(extents, len, f),
        }
    }

    /// Take a streaming lease on one extent: force it resident and pin it
    /// against eviction while a server streams chunks out of it (see
    /// [`ExtentPool::lease_extent`]). The hash-table pool has no aliased
    /// residency to protect — its serving path copies per chunk — so the
    /// lease is a no-op there.
    pub fn lease_extent(&self, spec: ExtentSpec) -> Result<()> {
        match self {
            BlobPool::Vm(p) => p.lease_extent(spec),
            BlobPool::Ht(_) => Ok(()),
        }
    }

    /// Lease `spec` only if it is already resident (see
    /// [`ExtentPool::try_lease_resident`]); the Ht pool keeps everything
    /// resident but has no pin machinery, so it reports no lease taken.
    pub fn try_lease_resident(&self, spec: ExtentSpec) -> Result<bool> {
        match self {
            BlobPool::Vm(p) => p.try_lease_resident(spec),
            BlobPool::Ht(_) => Ok(false),
        }
    }

    /// Release a streaming lease taken by [`BlobPool::lease_extent`].
    pub fn unlease_extent(&self, spec: ExtentSpec) {
        match self {
            BlobPool::Vm(p) => p.unlease_extent(spec),
            BlobPool::Ht(_) => {}
        }
    }

    /// Read one chunk (`byte_off .. byte_off + len` within `spec`) under a
    /// brief shared latch, passing the bytes to `f`. On the vmcache pool
    /// the slice borrows the pool frame directly (zero-copy); the
    /// hash-table pool gathers into a scratch buffer first, matching its
    /// malloc+memcpy read discipline.
    pub fn read_chunk<R>(
        &self,
        spec: ExtentSpec,
        byte_off: usize,
        len: usize,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        match self {
            BlobPool::Vm(p) => p.read_chunk(spec, byte_off, len, f),
            BlobPool::Ht(p) => {
                let mut buf = vec![0u8; len];
                p.read_range(spec, byte_off, &mut buf)?;
                p.metrics().bump_memcpy(len as u64);
                Ok(f(&buf))
            }
        }
    }

    /// Commit-time flush of dirty extent ranges (the single BLOB write).
    pub fn flush_extents(&self, items: &[FlushItem]) -> Result<()> {
        match self {
            BlobPool::Vm(p) => p.flush_extents(items),
            BlobPool::Ht(p) => p.flush_extents(items),
        }
    }

    /// Begin the commit-time flush without blocking: submit one batched
    /// asynchronous write of the dirty ranges and return the in-flight
    /// ticket. The single-flush ordering (§III-C) is the caller's
    /// responsibility: the batch's WAL records must be fsynced *before*
    /// this is called. Dirty/`prevent_evict` are cleared only when the
    /// ticket is reaped.
    pub fn flush_extents_async(&self, items: &[FlushItem]) -> Result<FlushTicket> {
        let inner = match self {
            BlobPool::Vm(p) => TicketInner::Vm {
                pool: p.clone(),
                batch: p.flush_extents_begin(items)?,
            },
            BlobPool::Ht(p) => TicketInner::Ht {
                pool: p.clone(),
                batch: p.flush_extents_begin(items)?,
            },
        };
        Ok(FlushTicket { inner })
    }

    /// Clear the `prevent_evict` pin without flushing (physical-logging
    /// mode: the WAL protects the content, eviction may write it back).
    pub fn unpin_extent(&self, spec: ExtentSpec) {
        match self {
            BlobPool::Vm(p) => p.set_prevent_evict(spec.start, false),
            BlobPool::Ht(p) => p.unpin_extent(spec),
        }
    }

    /// Discard extents without write-back (delete / rollback).
    pub fn drop_extents(&self, extents: &[ExtentSpec]) {
        for &spec in extents {
            match self {
                BlobPool::Vm(p) => p.drop_extent(spec),
                BlobPool::Ht(p) => p.drop_extent(spec),
            }
        }
    }

    /// Evict everything clean (recovery epilogue / cold-cache runs).
    pub fn drop_caches(&self) {
        match self {
            BlobPool::Vm(p) => p.drop_caches(),
            BlobPool::Ht(p) => p.drop_all(),
        }
    }

    /// Flush all dirty state (checkpoint / clean shutdown).
    pub fn flush_all_dirty(&self) -> Result<()> {
        match self {
            BlobPool::Vm(p) => p.flush_all_dirty(),
            BlobPool::Ht(p) => p.flush_all_dirty(),
        }
    }
}

/// One in-flight commit-time extent flush started by
/// [`BlobPool::flush_extents_async`].
///
/// The ticket owns everything the flight needs: the vm pool's shared
/// latches or the hash-table pool's scratch buffers, plus an `Arc` keeping
/// the pool itself alive. Reaping ([`FlushTicket::poll`] or
/// [`FlushTicket::wait`]) is what clears the extents' dirty and
/// `prevent_evict` flags — until then the frames stay pinned, which is the
/// pipeline's pin-budget accounting point. Dropping an unreaped ticket
/// blocks until the device writes land (they reference memory the ticket
/// guards) and then finishes it.
pub struct FlushTicket {
    inner: TicketInner,
}

enum TicketInner {
    Vm {
        pool: Arc<ExtentPool>,
        batch: ExtentFlushBatch,
    },
    Ht {
        pool: Arc<HashTablePool>,
        batch: HtFlushBatch,
    },
    /// Reaped; nothing left to do.
    Done,
}

impl FlushTicket {
    /// Non-blocking reap. Returns `Some(result)` exactly once, when every
    /// write of the batch has completed: at that point the extents are
    /// marked clean and unpinned (on success) and the latches/buffers are
    /// released. Returns `None` while still in flight — polling never
    /// executes device requests inline, so a poller cannot stall on
    /// modeled device time.
    pub fn poll(&mut self) -> Option<Result<()>> {
        let result = match &self.inner {
            TicketInner::Vm { batch, .. } => batch.try_complete()?,
            TicketInner::Ht { batch, .. } => batch.try_complete()?,
            TicketInner::Done => return None,
        };
        match std::mem::replace(&mut self.inner, TicketInner::Done) {
            TicketInner::Vm { pool, batch } => pool.flush_extents_finish(&batch, &result),
            TicketInner::Ht { pool, batch } => pool.flush_extents_finish(&batch, &result),
            TicketInner::Done => unreachable!("checked above"),
        }
        Some(result)
    }

    /// Block until the batch's writes complete (helping execute them),
    /// then reap.
    pub fn wait(mut self) -> Result<()> {
        self.block_until_io_done();
        match self.poll() {
            Some(result) => result,
            // Already reaped before the call (only possible for `Done`).
            None => Ok(()),
        }
    }

    /// Block until the underlying writes have completed, without reaping:
    /// the next [`FlushTicket::poll`] returns `Some` immediately. Used by
    /// the committer's flush stage to wait out a batch it cannot yet
    /// retire.
    pub fn block_until_io_done(&self) {
        match &self.inner {
            TicketInner::Vm { batch, .. } => batch.wait_done(),
            TicketInner::Ht { batch, .. } => batch.wait_done(),
            TicketInner::Done => {}
        }
    }

    /// Start pids of the extents this flight is writing (the flush stage's
    /// write-after-write overlap check).
    pub fn extent_starts(&self) -> impl Iterator<Item = Pid> + '_ {
        let items = match &self.inner {
            TicketInner::Vm { batch, .. } => batch.items(),
            TicketInner::Ht { batch, .. } => batch.items(),
            TicketInner::Done => &[],
        };
        items.iter().map(|i| i.spec.start)
    }
}

impl Drop for FlushTicket {
    fn drop(&mut self) {
        if matches!(self.inner, TicketInner::Done) {
            return;
        }
        // The in-flight requests reference latched frames / owned scratch;
        // land them before releasing either.
        self.block_until_io_done();
        let _ = self.poll();
    }
}
