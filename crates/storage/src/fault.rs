use crate::Device;
use lobster_types::{Error, Result};
use parking_lot::Mutex;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The fault classes [`FaultDevice`] can inject.
///
/// Transient faults carry an `io::ErrorKind` the retry policy classifies
/// as retryable ([`lobster_types::Error::is_transient_io`]); permanent
/// faults use `ErrorKind::Other` and must surface to the caller on the
/// first attempt. `ShortWrite`, `BitRotRead`, and `MisdirectedWrite`
/// model the silent-ish failure modes a checksum layer has to catch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Read fails with a retryable EIO; the data is intact underneath.
    TransientRead,
    /// Write fails with a retryable EIO; nothing reaches the device.
    TransientWrite,
    /// Sync fails with a retryable EIO; a repeat sync succeeds.
    TransientSync,
    /// Read fails hard (dead controller); retrying is pointless.
    PermanentRead,
    /// Write fails hard; retrying is pointless.
    PermanentWrite,
    /// Sync fails hard; retrying is pointless.
    PermanentSync,
    /// Only a prefix of the buffer reaches the device, then a retryable
    /// EIO is returned — the caller must re-issue the full write.
    ShortWrite,
    /// The read "succeeds" but one bit of the returned buffer is flipped:
    /// a silent wrong read only content verification can catch.
    BitRotRead,
    /// The write "succeeds" but lands at a neighbouring offset: silent
    /// corruption of a bystander plus a stale original.
    MisdirectedWrite,
}

impl FaultKind {
    /// Every fault kind, for sweep drivers.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::TransientRead,
        FaultKind::TransientWrite,
        FaultKind::TransientSync,
        FaultKind::PermanentRead,
        FaultKind::PermanentWrite,
        FaultKind::PermanentSync,
        FaultKind::ShortWrite,
        FaultKind::BitRotRead,
        FaultKind::MisdirectedWrite,
    ];

    /// Does this kind fail the op with an error the retry policy will
    /// classify as transient?
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            FaultKind::TransientRead
                | FaultKind::TransientWrite
                | FaultKind::TransientSync
                | FaultKind::ShortWrite
        )
    }

    /// Does this kind return `Ok` while corrupting data (no error for the
    /// retry layer to see)?
    pub fn is_silent(self) -> bool {
        matches!(self, FaultKind::BitRotRead | FaultKind::MisdirectedWrite)
    }

    fn applies_to(self, class: OpClass) -> bool {
        match class {
            OpClass::Read => matches!(
                self,
                FaultKind::TransientRead | FaultKind::PermanentRead | FaultKind::BitRotRead
            ),
            OpClass::Write => matches!(
                self,
                FaultKind::TransientWrite
                    | FaultKind::PermanentWrite
                    | FaultKind::ShortWrite
                    | FaultKind::MisdirectedWrite
            ),
            OpClass::Sync => matches!(self, FaultKind::TransientSync | FaultKind::PermanentSync),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Read,
    Write,
    Sync,
}

/// One injected fault, for test assertions against the schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Injection {
    /// Device-op index (reads, writes, and syncs share one counter).
    pub op: u64,
    pub kind: FaultKind,
    /// Byte offset of the faulted op (0 for sync).
    pub offset: u64,
    /// Length of the faulted op (0 for sync).
    pub len: usize,
}

/// Deterministic injection schedule for a [`FaultDevice`].
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed for the per-op injection decisions and all derived choices
    /// (which kind, which bit to rot, jittered short-write length).
    pub seed: u64,
    /// Injection probability per operation, in per-mille (0..=1000).
    pub per_mille: u32,
    /// Fault kinds eligible for injection; ops a kind does not apply to
    /// are never faulted by it.
    pub kinds: Vec<FaultKind>,
    /// Device ops to pass through cleanly after arming (lets a test load
    /// its working set before the weather turns).
    pub warmup_ops: u64,
    /// Cap on total injections; `u64::MAX` means unlimited.
    pub max_injections: u64,
}

impl FaultConfig {
    /// A schedule injecting `kinds` with probability `per_mille`/1000 per
    /// op, no warmup, unlimited injections.
    pub fn new(seed: u64, per_mille: u32, kinds: &[FaultKind]) -> Self {
        assert!(per_mille <= 1000);
        FaultConfig {
            seed,
            per_mille,
            kinds: kinds.to_vec(),
            warmup_ops: 0,
            max_injections: u64::MAX,
        }
    }
}

/// Seed-driven transient/permanent fault injection wrapper
/// (sibling of [`crate::CrashDevice`] / [`crate::ThrottledDevice`]).
///
/// Every `read_at`/`write_at`/`sync` increments a shared op counter; a
/// splitmix-mixed hash of `(seed, op)` decides deterministically whether
/// that op faults and with which eligible [`FaultKind`]. The same seed
/// therefore replays the same schedule against the same op sequence, and
/// the [injection log](FaultDevice::injection_log) records exactly what
/// fired so tests can assert retry metrics against ground truth.
///
/// The wrapper only overrides the three scalar ops: the [`Device`]
/// trait's `submit_read`/`submit_write` defaults delegate to them, so
/// batched I/O through [`crate::AsyncIo`] is covered automatically.
pub struct FaultDevice<D> {
    inner: D,
    cfg: FaultConfig,
    armed: AtomicBool,
    ops: AtomicU64,
    injected: AtomicU64,
    log: Mutex<Vec<Injection>>,
}

impl<D: Device> FaultDevice<D> {
    pub fn new(inner: D, cfg: FaultConfig) -> Self {
        FaultDevice {
            inner,
            cfg,
            armed: AtomicBool::new(false),
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Start injecting (after `warmup_ops` more clean ops).
    pub fn arm(&self) {
        // Re-base the warmup window on the current op count.
        self.ops.store(0, Ordering::SeqCst);
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Stop injecting; the log is kept.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Total faults injected so far.
    pub fn injections(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Every fault injected so far, in op order.
    pub fn injection_log(&self) -> Vec<Injection> {
        self.log.lock().clone()
    }

    pub fn clear_log(&self) {
        self.log.lock().clear();
        self.injected.store(0, Ordering::SeqCst);
    }

    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Decide whether the current op faults, and with which kind. Always
    /// advances the op counter so schedules are stable across arm state.
    fn decide(&self, class: OpClass, offset: u64, len: usize) -> Option<FaultKind> {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        if !self.armed.load(Ordering::SeqCst) || op < self.cfg.warmup_ops {
            return None;
        }
        if self.injected.load(Ordering::SeqCst) >= self.cfg.max_injections {
            return None;
        }
        let h = mix64(self.cfg.seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if h % 1000 >= u64::from(self.cfg.per_mille) {
            return None;
        }
        let eligible: Vec<FaultKind> = self
            .cfg
            .kinds
            .iter()
            .copied()
            .filter(|k| k.applies_to(class))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let kind = eligible[((h / 1000) % eligible.len() as u64) as usize];
        self.injected.fetch_add(1, Ordering::SeqCst);
        self.log.lock().push(Injection {
            op,
            kind,
            offset,
            len,
        });
        Some(kind)
    }
}

/// A retryable injected EIO (`ErrorKind::Interrupted`).
pub fn transient_eio(msg: &'static str) -> Error {
    Error::Io(io::Error::new(io::ErrorKind::Interrupted, msg))
}

/// A hard injected EIO (`ErrorKind::Other`): never retried.
pub fn permanent_eio(msg: &'static str) -> Error {
    Error::Io(io::Error::other(msg))
}

impl<D: Device> Device for FaultDevice<D> {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        match self.decide(OpClass::Read, offset, buf.len()) {
            Some(FaultKind::TransientRead) => Err(transient_eio("injected transient read EIO")),
            Some(FaultKind::PermanentRead) => Err(permanent_eio("injected permanent read EIO")),
            Some(FaultKind::BitRotRead) => {
                self.inner.read_at(buf, offset)?;
                if !buf.is_empty() {
                    let h = mix64(self.cfg.seed ^ offset ^ buf.len() as u64);
                    let bit = (h % (buf.len() as u64 * 8)) as usize;
                    buf[bit / 8] ^= 1 << (bit % 8);
                }
                Ok(())
            }
            _ => self.inner.read_at(buf, offset),
        }
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> Result<()> {
        match self.decide(OpClass::Write, offset, buf.len()) {
            Some(FaultKind::TransientWrite) => Err(transient_eio("injected transient write EIO")),
            Some(FaultKind::PermanentWrite) => Err(permanent_eio("injected permanent write EIO")),
            Some(FaultKind::ShortWrite) => {
                // A prefix reaches the medium, then the op errors; the
                // caller must re-issue the whole write.
                let keep = buf.len() / 2;
                if keep > 0 {
                    self.inner.write_at(&buf[..keep], offset)?;
                }
                Err(transient_eio("injected short write"))
            }
            Some(FaultKind::MisdirectedWrite) => {
                // Land one 4 KiB page away (wrapping inside capacity):
                // silent corruption of a bystander, stale original.
                let cap = self.inner.capacity();
                let shift = 4096u64;
                let wrong = if offset + shift + buf.len() as u64 <= cap {
                    offset + shift
                } else if offset >= shift {
                    offset - shift
                } else {
                    offset
                };
                self.inner.write_at(buf, wrong)
            }
            _ => self.inner.write_at(buf, offset),
        }
    }

    fn sync(&self) -> Result<()> {
        match self.decide(OpClass::Sync, 0, 0) {
            Some(FaultKind::TransientSync) => Err(transient_eio("injected transient sync EIO")),
            Some(FaultKind::PermanentSync) => Err(permanent_eio("injected permanent sync EIO")),
            _ => self.inner.sync(),
        }
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }
}

/// splitmix64 finalizer (same mixer the retry jitter uses).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    fn always(kinds: &[FaultKind]) -> FaultConfig {
        FaultConfig::new(7, 1000, kinds)
    }

    #[test]
    fn disarmed_device_is_transparent() {
        let dev = FaultDevice::new(MemDevice::new(8192), always(&FaultKind::ALL));
        dev.write_at(&[9u8; 128], 0).unwrap();
        let mut buf = [0u8; 128];
        dev.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [9u8; 128]);
        dev.sync().unwrap();
        assert!(dev.injection_log().is_empty());
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let dev = FaultDevice::new(
                MemDevice::new(1 << 20),
                FaultConfig::new(seed, 300, &FaultKind::ALL),
            );
            dev.arm();
            for i in 0..200u64 {
                let _ = dev.write_at(&[i as u8; 64], i * 64);
                let mut buf = [0u8; 64];
                let _ = dev.read_at(&mut buf, i * 64);
            }
            let _ = dev.sync();
            dev.injection_log()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert!(!a.is_empty(), "30% per-mille over 401 ops must fire");
        let c = run(43);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn transient_read_fails_without_touching_data() {
        let dev = FaultDevice::new(MemDevice::new(8192), always(&[FaultKind::TransientRead]));
        dev.write_at(&[5u8; 64], 0).unwrap(); // writes unaffected by kind filter
        dev.arm();
        let mut buf = [0u8; 64];
        let err = dev.read_at(&mut buf, 0).unwrap_err();
        assert!(err.is_transient_io());
        dev.disarm();
        dev.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [5u8; 64]);
    }

    #[test]
    fn permanent_faults_are_not_transient() {
        let dev = FaultDevice::new(MemDevice::new(8192), always(&[FaultKind::PermanentWrite]));
        dev.arm();
        let err = dev.write_at(&[1u8; 16], 0).unwrap_err();
        assert!(!err.is_transient_io());
    }

    #[test]
    fn short_write_applies_prefix_then_errors() {
        let dev = FaultDevice::new(MemDevice::new(8192), always(&[FaultKind::ShortWrite]));
        dev.arm();
        let err = dev.write_at(&[3u8; 100], 0).unwrap_err();
        assert!(err.is_transient_io());
        dev.disarm();
        let mut buf = [0u8; 100];
        dev.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf[..50], &[3u8; 50]);
        assert_eq!(&buf[50..], &[0u8; 50], "tail must not reach the medium");
    }

    #[test]
    fn bit_rot_flips_exactly_one_bit() {
        let dev = FaultDevice::new(MemDevice::new(8192), always(&[FaultKind::BitRotRead]));
        dev.write_at(&[0xAAu8; 256], 0).unwrap();
        dev.arm();
        let mut buf = [0u8; 256];
        dev.read_at(&mut buf, 0).unwrap();
        let flipped: u32 = buf.iter().map(|b| (b ^ 0xAA).count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit must rot");
        assert_eq!(dev.injection_log().len(), 1);
        assert_eq!(dev.injection_log()[0].kind, FaultKind::BitRotRead);
    }

    #[test]
    fn misdirected_write_lands_elsewhere() {
        let dev = FaultDevice::new(
            MemDevice::new(1 << 20),
            always(&[FaultKind::MisdirectedWrite]),
        );
        dev.arm();
        dev.write_at(&[7u8; 64], 0).unwrap(); // silently lands at 4096
        dev.disarm();
        let mut buf = [0u8; 64];
        dev.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [0u8; 64], "intended offset must be stale");
        dev.read_at(&mut buf, 4096).unwrap();
        assert_eq!(buf, [7u8; 64], "payload landed one page over");
    }

    #[test]
    fn max_injections_caps_the_schedule() {
        let mut cfg = always(&[FaultKind::TransientSync]);
        cfg.max_injections = 2;
        let dev = FaultDevice::new(MemDevice::new(4096), cfg);
        dev.arm();
        assert!(dev.sync().is_err());
        assert!(dev.sync().is_err());
        assert!(dev.sync().is_ok(), "cap reached; ops pass through");
        assert_eq!(dev.injections(), 2);
    }
}
