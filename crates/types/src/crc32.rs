//! CRC-32 (IEEE 802.3 polynomial, reflected) used for WAL record framing and
//! page trailers. Table-driven, generated at compile time.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Compute the CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 256];
        let base = crc32(&data);
        data[100] ^= 0x10;
        assert_ne!(crc32(&data), base);
    }
}
