//! The bench suite as a library: every `benches/*.rs` target's body lives
//! here as a `run(&mut Report)` function, so the same code serves three
//! callers — `cargo bench` (thin wrappers), the `lobster-bench` binary
//! (subset runs + `BENCH_*.json` emission), and CI's regression gate.

use crate::Report;

pub mod ablation_latching;
pub mod ablation_out_of_place;
pub mod ablation_tail_extent;
pub mod ablation_tier_formula;
pub mod aging;
pub mod fig10_pool_compare;
pub mod fig11_extent_reuse;
pub mod fig5_small_payload;
pub mod fig6_blob_logging;
pub mod fig7_metadata;
pub mod fig8_hot_read;
pub mod fig9_cold_read;
pub mod micro_primitives;
pub mod serve_curve;
pub mod table1_survey;
pub mod table2_shared_area;
pub mod table3_indexing;
pub mod table4_git_clone;

/// One registered bench: canonical short name (`fig9`), the cargo bench
/// target it also runs as, and its entry point.
pub struct BenchSpec {
    pub name: &'static str,
    pub target: &'static str,
    pub title: &'static str,
    pub paper_ref: &'static str,
    run: fn(&mut Report),
}

static SPECS: &[BenchSpec] = &[
    BenchSpec {
        name: "table1",
        target: "table1_survey",
        title: "Table I — 10 MB BLOB insert: write amplification survey",
        paper_ref: "§II Table I",
        run: table1_survey::run,
    },
    BenchSpec {
        name: "fig5",
        target: "fig5_small_payload",
        title: "Figure 5 — YCSB, 120 B payloads, 50% reads",
        paper_ref: "§V-B Figure 5",
        run: fig5_small_payload::run,
    },
    BenchSpec {
        name: "fig6",
        target: "fig6_blob_logging",
        title: "Figure 6 — YCSB with BLOB payloads (logging strategies)",
        paper_ref: "§V-B Figure 6",
        run: fig6_blob_logging::run,
    },
    BenchSpec {
        name: "fig7",
        target: "fig7_metadata",
        title: "Figure 7 — metadata operations (stat vs Blob State scan)",
        paper_ref: "§V-C Figure 7",
        run: fig7_metadata::run,
    },
    BenchSpec {
        name: "fig8",
        target: "fig8_hot_read",
        title: "Figure 8 — Wikipedia reads, hot cache (view-weighted)",
        paper_ref: "§V-D Figure 8",
        run: fig8_hot_read::run,
    },
    BenchSpec {
        name: "fig9",
        target: "fig9_cold_read",
        title: "Figure 9 — Wikipedia reads, cold cache, throughput over time",
        paper_ref: "§V-D Figure 9",
        run: fig9_cold_read::run,
    },
    BenchSpec {
        name: "fig10",
        target: "fig10_pool_compare",
        title: "Figure 10 — buffer-pool designs under concurrency",
        paper_ref: "§V-E Figure 10",
        run: fig10_pool_compare::run,
    },
    BenchSpec {
        name: "fig11",
        target: "fig11_extent_reuse",
        title: "Figure 11 — extent reuse under churn",
        paper_ref: "§V-F Figure 11",
        run: fig11_extent_reuse::run,
    },
    BenchSpec {
        name: "table2",
        target: "table2_shared_area",
        title: "Table II — shared aliasing area sizes",
        paper_ref: "§V-E Table II",
        run: table2_shared_area::run,
    },
    BenchSpec {
        name: "table3",
        target: "table3_indexing",
        title: "Table III — indexing BLOB content",
        paper_ref: "§V-G Table III",
        run: table3_indexing::run,
    },
    BenchSpec {
        name: "table4",
        target: "table4_git_clone",
        title: "Table IV — git clone trace replay",
        paper_ref: "§V-H Table IV",
        run: table4_git_clone::run,
    },
    BenchSpec {
        name: "ablation_tier_formula",
        target: "ablation_tier_formula",
        title: "Ablation — tier-size formula waste",
        paper_ref: "§III-D",
        run: ablation_tier_formula::run,
    },
    BenchSpec {
        name: "ablation_out_of_place",
        target: "ablation_out_of_place",
        title: "Ablation — out-of-place extent writes",
        paper_ref: "§III-C",
        run: ablation_out_of_place::run,
    },
    BenchSpec {
        name: "ablation_tail_extent",
        target: "ablation_tail_extent",
        title: "Ablation — tail extents",
        paper_ref: "§III-D",
        run: ablation_tail_extent::run,
    },
    BenchSpec {
        name: "ablation_latching",
        target: "ablation_latching",
        title: "Ablation — latch granularity",
        paper_ref: "§IV",
        run: ablation_latching::run,
    },
    BenchSpec {
        name: "micro",
        target: "micro_primitives",
        title: "Microbenchmarks — hashing, B-Tree, tier math, CRC",
        paper_ref: "§III/§IV primitives",
        run: micro_primitives::run,
    },
    BenchSpec {
        name: "aging",
        target: "aging",
        title: "Aging — churn torture with/without online defragmentation",
        paper_ref: "§III-D free lists + maintenance",
        run: aging::run,
    },
    BenchSpec {
        name: "serve",
        target: "serve_curve",
        title: "Serving curve — lobster-serve vs modeled client/server",
        paper_ref: "§II / §V-B client-server overhead",
        run: serve_curve::run,
    },
];

pub fn all() -> &'static [BenchSpec] {
    SPECS
}

/// Look a bench up by short name (`fig9`) or target name (`fig9_cold_read`).
pub fn find(name: &str) -> Option<&'static BenchSpec> {
    SPECS.iter().find(|s| s.name == name || s.target == name)
}

/// Run one bench: prints its human-readable tables as before and returns
/// the machine-readable report. Device throttling is reset first — each
/// bench opts in explicitly, and suite runs share one process.
pub fn run_spec(spec: &BenchSpec) -> Report {
    crate::env().set_throttled(false);
    let mut report = Report::new(spec.name, spec.title, spec.paper_ref);
    (spec.run)(&mut report);
    report
}

/// Run one bench `reps` times and keep the best value per entry key
/// ([`Report::merge_best`]) — the de-noised report the CI gate compares.
pub fn run_spec_best_of(spec: &BenchSpec, reps: usize) -> Report {
    let mut best = run_spec(spec);
    for _ in 1..reps {
        best.merge_best(run_spec(spec));
    }
    best
}

/// Entry point for the thin `benches/*.rs` wrappers: run the named bench
/// and drop `BENCH_<name>.json` into `LOBSTER_BENCH_JSON_DIR` if set.
pub fn bench_main(name: &str) {
    let spec = find(name).unwrap_or_else(|| panic!("unknown bench target '{name}'"));
    let report = run_spec(spec);
    if let Some(dir) = &crate::env().json_dir {
        let path = dir.join(report.file_name());
        report.write_to(&path).expect("write bench json");
        println!("\nwrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        for (i, a) in all().iter().enumerate() {
            for b in &all()[i + 1..] {
                assert_ne!(a.name, b.name);
                assert_ne!(a.target, b.target);
            }
            assert!(find(a.name).is_some());
            assert!(find(a.target).is_some());
        }
        assert_eq!(all().len(), 18);
        assert!(find("no_such_bench").is_none());
    }
}
