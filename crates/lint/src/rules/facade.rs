//! **sync-facade**: concurrency-bearing crates must reach atomics,
//! locks, `Condvar` and threads through `lobster-sync`, never
//! `std::sync`, `parking_lot` or `loom` directly. The facade is what
//! makes one source tree compile both as zero-cost production code and
//! as a loom model under `cfg(lobster_loom)` — a direct import is a
//! line the model checker and the TSan matrix silently stop seeing.
//!
//! Matches *any* occurrence of the forbidden paths (use declarations
//! and inline qualified paths alike). `std::sync` segments the facade
//! deliberately does not wrap (`mpsc`, `OnceLock`, …) are tolerated via
//! [`LintConfig::facade_allowed_segments`].

use super::push;
use crate::config::LintConfig;
use crate::lexer::is_path_sep;
use crate::{Diagnostic, SourceFile};

const RULE: &str = "sync-facade";

pub fn check(f: &SourceFile, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    let bound = cfg.facade_crates.contains(&"*") || cfg.facade_crates.iter().any(|c| *c == f.krate);
    if !bound {
        return;
    }
    let toks = &f.lx.toks;
    let mut last_line = 0u32;
    for i in 0..toks.len() {
        if f.in_test_mod(toks[i].line) {
            continue;
        }
        // `std :: sync`
        if toks[i].is_ident("std")
            && is_path_sep(toks, i + 1)
            && toks.get(i + 3).map(|t| t.is_ident("sync")) == Some(true)
        {
            // Allowed sub-segment? Look at the segment after `sync::`.
            if is_path_sep(toks, i + 4) {
                if let Some(seg) = toks.get(i + 6) {
                    if cfg.facade_allowed_segments.iter().any(|s| seg.is_ident(s)) {
                        continue;
                    }
                }
            }
            if toks[i].line == last_line {
                continue;
            }
            last_line = toks[i].line;
            push(
                out,
                f,
                cfg,
                RULE,
                toks[i].line,
                toks[i].col,
                "direct `std::sync` use in a facade-bound crate".into(),
                "import via `lobster_sync` (atomics live in `lobster_sync::atomic`) so \
                 cfg(lobster_loom) and the TSan matrix keep covering this site"
                    .into(),
            );
            continue;
        }
        // `parking_lot ::` or `loom ::`
        if (toks[i].is_ident("parking_lot") || toks[i].is_ident("loom")) && is_path_sep(toks, i + 1)
        {
            if toks[i].line == last_line {
                continue;
            }
            last_line = toks[i].line;
            push(
                out,
                f,
                cfg,
                RULE,
                toks[i].line,
                toks[i].col,
                format!("direct `{}` use in a facade-bound crate", toks[i].text),
                "import the lock/condvar types from `lobster_sync` instead".into(),
            );
        }
    }
}
