/// The SHA-256 compression-function state at a 64-byte input boundary.
///
/// The Blob State persists only the 32 state bytes; the number of processed
/// bytes is recomputed from the BLOB size (`size & !63`), so
/// [`Midstate::from_parts`] takes it separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Midstate {
    /// The eight 32-bit state words.
    pub state: [u32; 8],
    /// Bytes of input consumed when the state was captured. Always a
    /// multiple of 64.
    pub processed: u64,
}

impl Midstate {
    /// Serialize the state words to 32 big-endian bytes (as stored in a Blob
    /// State record).
    pub fn state_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Reconstruct a midstate from persisted state bytes plus the processed
    /// length (derived from the BLOB size).
    ///
    /// # Panics
    /// Panics if `processed` is not a multiple of 64: a midstate is only
    /// defined at block boundaries.
    pub fn from_parts(state_bytes: &[u8; 32], processed: u64) -> Self {
        assert!(
            processed.is_multiple_of(64),
            "midstate only exists at 64-byte boundaries (got {processed})"
        );
        let mut state = [0u32; 8];
        for (i, w) in state.iter_mut().enumerate() {
            *w = u32::from_be_bytes(
                state_bytes[i * 4..i * 4 + 4]
                    .try_into()
                    .expect("4-byte chunk"),
            );
        }
        Midstate { state, processed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sha256;

    #[test]
    fn roundtrip_through_bytes() {
        let mut h = Sha256::new();
        h.update(&[42u8; 192]);
        let mid = h.midstate();
        let rebuilt = Midstate::from_parts(&mid.state_bytes(), mid.processed);
        assert_eq!(mid, rebuilt);
    }

    #[test]
    #[should_panic(expected = "64-byte boundaries")]
    fn rejects_unaligned_processed() {
        Midstate::from_parts(&[0u8; 32], 100);
    }

    #[test]
    fn rebuilt_midstate_resumes_correctly() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 241) as u8).collect();
        let boundary = (data.len() / 64) * 64;
        let mut a = Sha256::new();
        a.update(&data);
        let mid = a.midstate();
        let stored = mid.state_bytes();

        // Later: reconstruct from stored bytes + size, re-feed the tail, append.
        let rebuilt = Midstate::from_parts(&stored, boundary as u64);
        let mut b = Sha256::resume(rebuilt);
        b.update(&data[boundary..]);
        b.update(b"appended");
        let mut whole = Sha256::new();
        whole.update(&data);
        whole.update(b"appended");
        assert_eq!(b.finalize(), whole.finalize());
    }
}
