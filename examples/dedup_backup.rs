//! Deduplicated backup snapshots: content-addressed storage built on the
//! Blob State's SHA-256.
//!
//! A backup tool stores nightly snapshots of a directory tree. Between
//! nights, most files are unchanged — a filesystem-backed store would write
//! every file of every snapshot again, while `DedupStore` (which keys the
//! physical object by the SHA-256 that every Blob State already carries)
//! stores each distinct content exactly once and bumps a reference count
//! for the rest.
//!
//! ```text
//! cargo run --release --example dedup_backup
//! ```

use lobster::core::{Config, Database, DedupStore, RelationKind};
use lobster::storage::MemDevice;
use lobster::workloads::make_payload;
use std::sync::Arc;

const FILES: usize = 200;
const NIGHTS: usize = 7;
/// Fraction of files rewritten each night (the daily churn).
const CHURN: f64 = 0.08;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::create(
        Arc::new(MemDevice::new(512 << 20)),
        Arc::new(MemDevice::new(128 << 20)),
        Config::default(),
    )?;
    let backups = DedupStore::create(&db, "backups")?;
    // A naive (non-deduplicating) relation for comparison.
    let naive = db.create_relation("naive", RelationKind::Blob)?;

    // Each file's content is a function of (file id, version); a night
    // bumps the version of ~CHURN of the files.
    let mut versions = vec![0u64; FILES];
    let mut rng = 0x5EEDu64;
    let mut naive_bytes = 0u64;

    for night in 0..NIGHTS {
        if night > 0 {
            for (i, v) in versions.iter_mut().enumerate() {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (rng >> 33) as f64 / (1u64 << 31) as f64 / 2.0 < CHURN {
                    *v += 1;
                    let _ = i;
                }
            }
        }
        let mut txn = db.begin();
        let mut new_objects = 0usize;
        for (file, &version) in versions.iter().enumerate() {
            let size = 8_000 + (file * 997) % 60_000;
            let content = make_payload(size, (file as u64) << 20 | version);
            let snap_key = format!("night{night}/file{file:04}");
            let was_dup = backups.put(&mut txn, snap_key.as_bytes(), &content)?;
            if !was_dup {
                new_objects += 1;
            }
            txn.put_blob(&naive, snap_key.as_bytes(), &content)?;
            naive_bytes += content.len() as u64;
        }
        txn.commit()?;
        println!("night {night}: {FILES} files snapshotted, {new_objects} new objects written");
    }

    let mut txn = db.begin();
    let stats = backups.stats(&mut txn)?;

    // Spot-check: a restore of the final snapshot is byte-identical.
    for file in [0usize, 42, FILES - 1] {
        let size = 8_000 + (file * 997) % 60_000;
        let expect = make_payload(size, (file as u64) << 20 | versions[file]);
        let key = format!("night{}/file{file:04}", NIGHTS - 1);
        let got = backups.get(&mut txn, key.as_bytes(), |b| b.to_vec())?;
        assert_eq!(got, expect, "restore mismatch for {key}");
    }
    txn.commit()?;

    println!("\n--- after {NIGHTS} nights x {FILES} files ---");
    println!(
        "deduplicated: {} objects, {} references, {:.1} MiB physical / {:.1} MiB logical",
        stats.objects,
        stats.references,
        stats.physical_bytes as f64 / (1 << 20) as f64,
        stats.logical_bytes as f64 / (1 << 20) as f64,
    );
    println!(
        "naive store:  {:.1} MiB written",
        naive_bytes as f64 / (1 << 20) as f64
    );
    println!("dedup ratio:  {:.2}x", stats.ratio());
    assert!(stats.ratio() > 3.0, "7 nights at 8% churn should dedup >3x");
    println!("restore check passed: final snapshot is byte-identical");
    Ok(())
}
