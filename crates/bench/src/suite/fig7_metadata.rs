//! Figure 7: metadata operations — retrieve the Blob States of 10
//! consecutive BLOBs (one B-Tree scan) versus `fstat` on 10 consecutive
//! files (10 syscalls).
//!
//! Paper shape: the file systems all perform alike, and Our is an order of
//! magnitude faster (15.6× in the paper) because the metadata lives in a
//! scan-friendly B-Tree instead of behind per-file kernel calls.

use crate::*;
use lobster_baselines::{FsProfile, LobsterMode, LobsterStore, ModelFs, ObjectStore};
use lobster_vfs::{write_all, FileSystem, HostFs};
use std::time::Instant;

const PAYLOAD: usize = 100 * 1024; // 100 KB, as in the paper
const GROUP: usize = 10;

pub(crate) fn run(report: &mut Report) {
    banner(
        "Figure 7 — metadata ops: 10 consecutive Blob States vs 10x fstat",
        "§V-C Figure 7",
    );
    let files = scaled(2000);
    let rounds = scaled(20_000);

    let mut table = Table::new(&["system", "group-ops/s", "per-file ops/s", "syscalls/group"]);

    // ---- Our engine: one scan yields all ten states ------------------------
    let store = LobsterStore::new(
        "Our",
        mem_device(1 << 30),
        mem_device(256 << 20),
        our_config(1),
        LobsterMode::Blobs,
    )
    .expect("create");
    for i in 0..files {
        store
            .put(&format!("f{i:06}"), &make_payload(PAYLOAD, i as u64))
            .expect("load");
    }
    let db = store.database().clone();
    let rel = store.relation().clone();
    let t0 = Instant::now();
    let mut state = 1u64;
    for _ in 0..rounds {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let start = (state >> 33) as usize % (files - GROUP);
        let from = format!("f{start:06}");
        let mut t = db.begin();
        let mut seen = 0usize;
        t.scan_states(&rel, from.as_bytes(), |_, s| {
            std::hint::black_box(s.size);
            seen += 1;
            seen < GROUP
        })
        .expect("scan");
        t.commit().expect("commit");
    }
    let our_rate = rounds as f64 / t0.elapsed().as_secs_f64();
    report.push(Entry::throughput("Our", our_rate).param("op", "scan_states_x10"));
    table.row(&[
        "Our".into(),
        fmt_rate(our_rate),
        fmt_rate(our_rate * GROUP as f64),
        "0".into(),
    ]);

    // ---- File systems: ten stat calls per group ----------------------------
    let mut fs_best = 0.0f64;
    for profile in [
        FsProfile::ext4_ordered(),
        FsProfile::ext4_journal(),
        FsProfile::xfs(),
        FsProfile::btrfs(),
        FsProfile::f2fs(),
    ] {
        let fs = ModelFs::new(profile, mem_device(1 << 30), 64 * 1024);
        for i in 0..files {
            fs.put(&format!("f{i:06}"), &make_payload(PAYLOAD, i as u64))
                .expect("load");
        }
        let before = fs.stats().metrics;
        let t0 = Instant::now();
        let mut state = 1u64;
        for _ in 0..rounds {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let start = (state >> 33) as usize % (files - GROUP);
            for i in 0..GROUP {
                let size = fs.stat(&format!("f{:06}", start + i)).expect("stat");
                std::hint::black_box(size);
            }
        }
        let elapsed = t0.elapsed();
        let delta = fs.stats().metrics - before;
        let rate = rounds as f64 / elapsed.as_secs_f64();
        fs_best = fs_best.max(rate);
        report.push(
            Entry::throughput(profile.name, rate)
                .param("op", "fstat_x10")
                .counters(delta),
        );
        table.row(&[
            profile.name.to_string(),
            fmt_rate(rate),
            fmt_rate(rate * GROUP as f64),
            format!("{:.0}", delta.syscalls as f64 / rounds as f64),
        ]);
    }

    // ---- Reality anchor: the real host filesystem (true syscalls) ----------
    {
        let root = std::env::temp_dir().join(format!("lobster-fig7-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let host = HostFs::new(&root).expect("hostfs");
        // Metadata-only: empty files suffice for fstat.
        for i in 0..files {
            write_all(&host, &format!("/d/f{i:06}"), b"").expect("create");
        }
        let t0 = Instant::now();
        let mut state = 1u64;
        for _ in 0..rounds {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let start = (state >> 33) as usize % (files - GROUP);
            for i in 0..GROUP {
                let stat = host
                    .getattr(&format!("/d/f{:06}", start + i))
                    .expect("stat");
                std::hint::black_box(stat.size);
            }
        }
        let rate = rounds as f64 / t0.elapsed().as_secs_f64();
        // Real syscalls on the host tmpfs — a reality anchor, not a gated
        // competitor (host speed varies across CI runners).
        report.push(Entry::new("HostFs", "host_anchor", "ops/s", rate, true));
        table.row(&[
            "HostFs (real)".into(),
            fmt_rate(rate),
            fmt_rate(rate * GROUP as f64),
            "10".into(),
        ]);
        std::fs::remove_dir_all(&root).ok();
    }

    table.print();
    let ratio = our_rate / fs_best.max(1e-9);
    println!("\nOur vs best file system: {ratio:.1}x (paper: 15.6x)");
    report.push(Entry::new("Our", "speedup_vs_best_fs", "x", ratio, true));
}
