//! Transient-fault torture sweep: run a blob workload against data and WAL
//! devices wrapped in [`FaultDevice`], sweeping injection seeds × fault
//! kinds, and assert every run lands in exactly one of three states:
//!
//! 1. **success** — the operation completed and returned exactly the
//!    committed bytes;
//! 2. **clean retryable error** — a typed `Err` the caller can handle
//!    (retry budget exhausted, sticky committer fail-stop, …);
//! 3. **detected-and-quarantined corruption** — `Error::Corruption` with
//!    the blob's extents fenced against re-allocation.
//!
//! Never a panic, a hang, or a silent wrong read.
//!
//! Knobs (see EXPERIMENTS.md): `LOBSTER_FAULT_SEED` re-bases the sweep's
//! seed schedule; `LOBSTER_TORTURE_MULT` widens the sweep for the nightly
//! torture job.

use lobster_core::{Config, Database, Relation, RelationKind};
use lobster_storage::{FaultConfig, FaultDevice, FaultKind, MemDevice};
use lobster_types::Error;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Sweep-width multiplier for the nightly torture CI job
/// (`LOBSTER_TORTURE_MULT=10`); unset or invalid means 1.
fn torture_mult() -> u64 {
    std::env::var("LOBSTER_TORTURE_MULT")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&m| m >= 1)
        .unwrap_or(1)
}

/// Base seed for the injection schedules; override with
/// `LOBSTER_FAULT_SEED` to replay a different (or a failing) schedule.
fn base_seed() -> u64 {
    std::env::var("LOBSTER_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xFA17)
}

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut out = vec![0u8; len];
    let mut state = seed | 1;
    for b in &mut out {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *b = state as u8;
    }
    out
}

fn cfg(io_retries: u32, verify_reads: bool, batched_faults: bool) -> Config {
    Config {
        pool_frames: 2048,
        io_retries,
        verify_reads,
        batched_faults,
        // Keep the device-op schedule exactly the foreground workload's:
        // speculative prefetch reads would consume injection slots.
        readahead_extents: 0,
        ..Config::default()
    }
}

type FaultyMem = FaultDevice<MemDevice>;

fn faulty(cap: usize, seed: u64, per_mille: u32, kind: FaultKind, max: u64) -> Arc<FaultyMem> {
    let mut fc = FaultConfig::new(seed, per_mille, &[kind]);
    fc.max_injections = max;
    Arc::new(FaultDevice::new(MemDevice::new(cap), fc))
}

/// Evict a blob's extents from the pool so the next read faults from the
/// (possibly lying) device.
fn evict_blob(db: &Arc<Database>, rel: &Relation, key: &[u8]) {
    let mut t = db.begin();
    if let Ok(Some(state)) = t.blob_state(rel, key) {
        let specs = state.extent_specs(db.tier_table());
        db.blob_pool().drop_extents(&specs);
    }
}

/// One seed × kind case. Returns `(clean_successes, clean_errors,
/// detected_corruptions)` over the armed phase; panics (failing the sweep)
/// on any silent wrong read or unquarantined verify-detected corruption.
fn sweep_case(seed: u64, kind: FaultKind) -> (u64, u64, u64) {
    let data = faulty(48 << 20, seed, 150, kind, 4);
    let wal = faulty(8 << 20, seed ^ 0x5EED, 150, kind, 2);
    let db = Database::create(data.clone(), wal.clone(), cfg(3, true, true)).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();

    let mut expected: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for i in 0u64..6 {
        let key = format!("blob-{i}").into_bytes();
        let content = pattern(96_000, seed.wrapping_add(i));
        let mut t = db.begin();
        t.put_blob(&rel, &key, &content).unwrap();
        t.commit().unwrap();
        expected.insert(key, content);
    }
    db.checkpoint().unwrap();

    data.arm();
    wal.arm();

    let (mut ok, mut clean, mut corrupt) = (0u64, 0u64, 0u64);

    // Armed reads: every get_blob must return exact bytes, a typed error,
    // or detected corruption.
    for (key, content) in &expected {
        evict_blob(&db, &rel, key);
        let mut t = db.begin();
        match t.get_blob(&rel, key, |b| b.to_vec()) {
            Ok(got) => {
                assert_eq!(
                    got,
                    *content,
                    "seed {seed} kind {kind:?}: silent wrong read of {:?}",
                    String::from_utf8_lossy(key)
                );
                ok += 1;
            }
            Err(Error::Corruption(_)) => {
                // Verify-on-read detected rot that survived a device
                // re-read. Bit rot is injected on the read path, so the
                // detection must also have quarantined the blob.
                if kind == FaultKind::BitRotRead {
                    assert!(
                        db.is_blob_quarantined("b", key),
                        "seed {seed}: corruption surfaced without quarantine"
                    );
                }
                corrupt += 1;
            }
            Err(_) => clean += 1,
        }
    }

    // Armed writes: commits may fail, but only cleanly.
    for i in 0u64..2 {
        let key = format!("armed-{i}").into_bytes();
        let content = pattern(48_000, seed ^ (0xA0 + i));
        let mut t = db.begin();
        let res = t.put_blob(&rel, &key, &content).and_then(|()| t.commit());
        match res {
            Ok(()) => {
                ok += 1;
                expected.insert(key, content);
            }
            Err(_) => clean += 1,
        }
    }

    data.disarm();
    wal.disarm();

    // Honest-device epilogue: every blob either reads back exactly, or the
    // damage was *detected* (quarantined corruption / a clean error from
    // the sticky committer fail-stop). Never a silent wrong read.
    for (key, content) in &expected {
        evict_blob(&db, &rel, key);
        let mut t = db.begin();
        match t.get_blob(&rel, key, |b| b.to_vec()) {
            Ok(got) => assert_eq!(
                got, *content,
                "seed {seed} kind {kind:?}: wrong bytes after disarm"
            ),
            Err(Error::Corruption(_)) => {
                assert!(
                    kind.is_silent() || kind == FaultKind::ShortWrite,
                    "seed {seed} kind {kind:?}: non-silent fault left persistent corruption"
                );
                corrupt += 1;
            }
            Err(_) => clean += 1,
        }
    }

    (ok, clean, corrupt)
}

#[test]
fn fault_sweep_tristate_outcomes() {
    // ≥ 200 seed × kind combos at smoke scale (9 kinds × 24 seeds = 216);
    // the torture multiplier widens the seed range.
    let seeds_per_kind = 24 * torture_mult();
    let mut combos = 0u64;
    let mut totals = (0u64, 0u64, 0u64);
    for kind in FaultKind::ALL {
        for i in 0..seeds_per_kind {
            let seed = base_seed() ^ (i.wrapping_mul(0x9E37_79B9)) ^ ((kind as u64) << 56);
            let (ok, clean, corrupt) = sweep_case(seed, kind);
            totals.0 += ok;
            totals.1 += clean;
            totals.2 += corrupt;
            combos += 1;
        }
    }
    assert!(combos >= 200, "sweep too narrow: {combos} combos");
    // Sanity on the sweep itself: the injection rate is low enough that
    // plenty of operations succeed, and high enough that faults were hit.
    assert!(totals.0 > 0, "no operation ever succeeded");
    assert!(
        totals.1 + totals.2 > 0,
        "no fault ever surfaced — injection misconfigured"
    );
}

#[test]
fn bit_rot_is_always_caught_on_get_blob() {
    // Permanent rot: every device read garbles one bit, so the one-shot
    // re-read cannot clear the mismatch. Every read of every blob must
    // surface Corruption and quarantine — 100% detection, zero wrong bytes.
    let seed = base_seed() ^ 0xB17;
    let data = faulty(48 << 20, seed, 1000, FaultKind::BitRotRead, u64::MAX);
    let wal = Arc::new(MemDevice::new(8 << 20));
    let db = Database::create(data.clone(), wal, cfg(3, true, true)).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();

    let mut keys = Vec::new();
    for i in 0u64..4 {
        let key = format!("rot-{i}").into_bytes();
        let mut t = db.begin();
        t.put_blob(&rel, &key, &pattern(64_000, seed + i)).unwrap();
        t.commit().unwrap();
        keys.push(key);
    }
    data.arm();
    for key in &keys {
        evict_blob(&db, &rel, key);
        let mut t = db.begin();
        match t.get_blob(&rel, key, |b| b.to_vec()) {
            Err(Error::Corruption(_)) => {}
            Ok(_) => panic!("bit rot served silently"),
            Err(e) => panic!("expected Corruption, got {e:?}"),
        }
        assert!(db.is_blob_quarantined("b", key));
    }
    data.disarm();
    let m = db.metrics();
    assert_eq!(
        m.corruption_detected.load(Ordering::Relaxed),
        keys.len() as u64
    );
    assert_eq!(
        m.quarantined_blobs.load(Ordering::Relaxed),
        keys.len() as u64
    );
    assert_eq!(db.quarantined_blobs().len(), keys.len());
}

#[test]
fn single_bit_rot_clears_on_reread() {
    // One transient device lie: the first read garbles, the verify
    // mismatch drops the cached frames, and the re-read returns clean
    // bytes — the caller sees a plain success, nothing is quarantined.
    let seed = base_seed() ^ 0x1B17;
    let data = faulty(48 << 20, seed, 1000, FaultKind::BitRotRead, 1);
    let wal = Arc::new(MemDevice::new(8 << 20));
    let db = Database::create(data.clone(), wal, cfg(3, true, true)).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let content = pattern(64_000, seed);
    {
        let mut t = db.begin();
        t.put_blob(&rel, b"lie", &content).unwrap();
        t.commit().unwrap();
    }
    evict_blob(&db, &rel, b"lie");
    data.arm();
    let mut t = db.begin();
    let got = t.get_blob(&rel, b"lie", |b| b.to_vec()).unwrap();
    assert_eq!(got, content);
    data.disarm();
    assert_eq!(data.injections(), 1, "the lie must actually have fired");
    assert_eq!(db.metrics().quarantined_blobs.load(Ordering::Relaxed), 0);
    assert!(db.quarantined_blobs().is_empty());
}

#[test]
fn verify_off_ablation_serves_unverified_bytes() {
    // The ablation control: with `verify_reads = false` the same bit rot
    // is served to the caller — this is exactly the silent wrong read the
    // tentpole exists to prevent, demonstrated under the knob's off state.
    let seed = base_seed() ^ 0xAB1A;
    // Unlimited injections: every extent read is garbled, so the flip
    // cannot hide in the final extent's tail slack.
    let data = faulty(48 << 20, seed, 1000, FaultKind::BitRotRead, u64::MAX);
    let wal = Arc::new(MemDevice::new(8 << 20));
    let db = Database::create(data.clone(), wal, cfg(3, false, true)).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let content = pattern(64_000, seed);
    {
        let mut t = db.begin();
        t.put_blob(&rel, b"x", &content).unwrap();
        t.commit().unwrap();
    }
    evict_blob(&db, &rel, b"x");
    data.arm();
    let mut t = db.begin();
    let got = t.get_blob(&rel, b"x", |b| b.to_vec()).unwrap();
    data.disarm();
    assert!(data.injections() > 0);
    assert_ne!(got, content, "rot reached the caller — the knob is off");
    assert_eq!(db.metrics().corruption_detected.load(Ordering::Relaxed), 0);
    assert!(db.quarantined_blobs().is_empty());
}

/// Satellite: `io_retries`/`io_giveups` move in lockstep with the fault
/// device's injection log. Every transient injection observed at a retried
/// choke point is either absorbed (one `io_retries` tick) or the op's
/// final attempt (one `io_giveups` tick per op), so:
/// `io_retries == transient injections − io_giveups` exactly.
#[test]
fn retry_counters_match_injection_log() {
    // Absorbed case: at most 2 injections against a budget of 3, serial
    // (unbatched) faulting so each extent read is its own retried op.
    let seed = base_seed() ^ 0xC0;
    let data = faulty(48 << 20, seed, 300, FaultKind::TransientRead, 2);
    let wal = Arc::new(MemDevice::new(8 << 20));
    let db = Database::create(data.clone(), wal, cfg(3, false, false)).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let mut blobs = Vec::new();
    for i in 0u64..4 {
        let key = format!("k{i}").into_bytes();
        let content = pattern(80_000, seed + i);
        let mut t = db.begin();
        t.put_blob(&rel, &key, &content).unwrap();
        t.commit().unwrap();
        blobs.push((key, content));
    }
    for (key, _) in &blobs {
        evict_blob(&db, &rel, key);
    }
    data.arm();
    for (key, content) in &blobs {
        let mut t = db.begin();
        let got = t.get_blob(&rel, key, |b| b.to_vec()).unwrap();
        assert_eq!(&got, content);
    }
    data.disarm();
    let transient = data
        .injection_log()
        .iter()
        .filter(|i| i.kind.is_transient())
        .count() as u64;
    assert!(transient > 0, "schedule never fired — widen per_mille");
    let m = db.metrics();
    assert_eq!(m.io_retries.load(Ordering::Relaxed), transient);
    assert_eq!(m.io_giveups.load(Ordering::Relaxed), 0);

    // Give-up case: every read fails, budget 2 → per failing op the log
    // gains 3 transient injections, the counters gain 2 retries + 1 giveup.
    let seed = base_seed() ^ 0xC1;
    let data = faulty(48 << 20, seed, 1000, FaultKind::TransientRead, u64::MAX);
    let wal = Arc::new(MemDevice::new(8 << 20));
    let db = Database::create(data.clone(), wal, cfg(2, false, false)).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let content = pattern(80_000, seed);
    {
        let mut t = db.begin();
        t.put_blob(&rel, b"doomed", &content).unwrap();
        t.commit().unwrap();
    }
    evict_blob(&db, &rel, b"doomed");
    data.arm();
    {
        let mut t = db.begin();
        assert!(t.get_blob(&rel, b"doomed", |b| b.to_vec()).is_err());
    }
    data.disarm();
    let transient = data
        .injection_log()
        .iter()
        .filter(|i| i.kind.is_transient())
        .count() as u64;
    let m = db.metrics();
    let retries = m.io_retries.load(Ordering::Relaxed);
    let giveups = m.io_giveups.load(Ordering::Relaxed);
    assert_eq!(giveups, 1, "exactly the first extent's read gives up");
    assert_eq!(retries, transient - giveups);
    assert_eq!(retries, 2, "budget of 2 means exactly 2 retries");
}

/// Ablation: `io_retries = 0` restores fail-fast — a single transient
/// fault surfaces as an error instead of being absorbed.
#[test]
fn zero_retry_budget_is_fail_fast() {
    let seed = base_seed() ^ 0xFF;
    let data = faulty(48 << 20, seed, 1000, FaultKind::TransientRead, 1);
    let wal = Arc::new(MemDevice::new(8 << 20));
    let db = Database::create(data.clone(), wal, cfg(0, false, false)).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let content = pattern(64_000, seed);
    {
        let mut t = db.begin();
        t.put_blob(&rel, b"x", &content).unwrap();
        t.commit().unwrap();
    }
    evict_blob(&db, &rel, b"x");
    data.arm();
    {
        let mut t = db.begin();
        assert!(t.get_blob(&rel, b"x", |b| b.to_vec()).is_err());
    }
    data.disarm();
    let m = db.metrics();
    assert_eq!(m.io_retries.load(Ordering::Relaxed), 0);
    assert_eq!(m.io_giveups.load(Ordering::Relaxed), 1);
    // The fault was one transient hiccup: the very next read succeeds.
    let mut t = db.begin();
    assert_eq!(t.get_blob(&rel, b"x", |b| b.to_vec()).unwrap(), content);
}
