//! Extracted protocol cores from the LOBSTER latch/commit fast paths,
//! written against `lobster-sync` so the same code runs two ways:
//!
//! * `cargo test -p lobster-sync-models` — smoke mode: each model body runs
//!   `LOBSTER_MODEL_ITERS` times (default 50) with real threads;
//! * `RUSTFLAGS="--cfg lobster_loom" cargo test -p lobster-sync-models` —
//!   model-checking mode: each body runs under every interleaving reachable
//!   within `LOOM_MAX_PREEMPTIONS` (default 3) and fails on the first
//!   schedule that violates an assertion.
//!
//! The four cores mirror, at reduced scale, the protocols in
//! `crates/buffer/src/pool.rs` and `crates/core/src/group_commit.rs`:
//!
//! 1. [`latch`] — the vmcache-style packed page-table entry: shared-count /
//!    exclusive-tag CAS transitions, and the optimistic version-validate
//!    read pattern.
//! 2. [`claim`] — PR 1's fault-batch protocol: racing `EVICTED -> LOCKED`
//!    CAS claims, frame allocation, and rollback on failure.
//! 3. [`frontier`] — PR 3's two-stage commit: WAL durability strictly before
//!    extent writes, and the contiguous durable-epoch frontier.
//! 4. [`pins`] — `prevent_evict` pins released exactly once, pin budget
//!    never going negative, eviction never observing a pinned extent.
//! 5. [`xshard`] — the sharded engine's cross-shard commit epoch
//!    (`crates/core/src/shard.rs`): a multi-shard transaction is durable
//!    iff *every* participant's stage-1 WAL fsync covers the epoch its
//!    marker landed in, and the global epoch is the minimum over shard
//!    frontiers — never ahead of any shard's disk.
//!
//! Every model keeps spin loops *bounded* (a give-up path instead of an
//! unbounded retry) so the exhaustive explorer terminates; invariants are
//! asserted only on paths that actually acquired the resource.

#![forbid(unsafe_code)]

pub mod latch {
    //! Core 1: the packed-entry latch word from `pool.rs`.
    //!
    //! Layout mirror: `[tag:8][...56 bits unused here]`, tag `0xFE` =
    //! exclusive, `0..` = shared count. A writer updates two cells under the
    //! exclusive tag; a reader under a shared latch must never observe them
    //! torn.

    use lobster_sync::atomic::{AtomicU64, Ordering};
    use lobster_sync::{hint, thread, Arc};

    const TAG_SHIFT: u32 = 56;
    const TAG_LOCKED: u64 = 0xFE;
    const ONE_SHARED: u64 = 1 << TAG_SHIFT;

    struct Page {
        entry: AtomicU64,
        a: AtomicU64,
        b: AtomicU64,
    }

    fn reader(p: &Page, check_tag: bool) {
        // Bounded acquisition attempts keep the schedule space finite.
        for _ in 0..4 {
            let e = p.entry.load(Ordering::Acquire);
            if check_tag && (e >> TAG_SHIFT) >= TAG_LOCKED {
                hint::spin_loop();
                continue;
            }
            if p.entry
                .compare_exchange(e, e + ONE_SHARED, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // Shared latch held: the two cells must be coherent.
            let x = p.a.load(Ordering::Acquire);
            let y = p.b.load(Ordering::Acquire);
            assert_eq!(x, y, "torn read under shared latch");
            // Release: decrement the shared count.
            loop {
                let cur = p.entry.load(Ordering::Acquire);
                if p.entry
                    .compare_exchange(cur, cur - ONE_SHARED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
            }
            return;
        }
    }

    fn writer(p: &Page) {
        // Bounded try-exclusive: only an unlatched entry (tag 0) can be
        // locked, exactly as `fix_exclusive`'s hit path.
        for _ in 0..4 {
            if p.entry
                .compare_exchange(
                    0,
                    TAG_LOCKED << TAG_SHIFT,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                let v = p.a.load(Ordering::Acquire) + 1;
                p.a.store(v, Ordering::Release);
                // A reader sneaking in here would observe a != b.
                p.b.store(v, Ordering::Release);
                p.entry.store(0, Ordering::Release);
                return;
            }
            hint::spin_loop();
        }
    }

    fn run(check_tag: bool) {
        let p = Arc::new(Page {
            entry: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        });
        let p1 = Arc::clone(&p);
        let r = thread::spawn(move || reader(&p1, check_tag));
        let p2 = Arc::clone(&p);
        let w = thread::spawn(move || writer(&p2));
        r.join().unwrap();
        w.join().unwrap();
    }

    /// The correct protocol: readers refuse `TAG_LOCKED` entries.
    pub fn check_latch_excludes() {
        lobster_sync::model(|| run(true));
    }

    /// Deliberately broken protocol (reader ignores the exclusive tag);
    /// the checker must find the torn read. Only meaningful under loom.
    pub fn run_broken_latch() {
        lobster_sync::model(|| run(false));
    }

    struct Versioned {
        v: AtomicU64,
        a: AtomicU64,
        b: AtomicU64,
    }

    fn opt_reader(s: &Versioned, revalidate: bool) {
        for _ in 0..4 {
            let v1 = s.v.load(Ordering::Acquire);
            if v1 % 2 == 1 {
                hint::spin_loop();
                continue;
            }
            let x = s.a.load(Ordering::Acquire);
            let y = s.b.load(Ordering::Acquire);
            if revalidate && s.v.load(Ordering::Acquire) != v1 {
                continue; // writer raced us; retry
            }
            assert_eq!(x, y, "optimistic read not validated against version bump");
            return;
        }
    }

    fn opt_writer(s: &Versioned) {
        // begin: even -> odd
        let v = s.v.load(Ordering::Acquire);
        s.v.store(v + 1, Ordering::Release);
        let n = s.a.load(Ordering::Acquire) + 1;
        s.a.store(n, Ordering::Release);
        s.b.store(n, Ordering::Release);
        // end: odd -> even
        s.v.store(v + 2, Ordering::Release);
    }

    fn run_opt(revalidate: bool) {
        let s = Arc::new(Versioned {
            v: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        });
        let s1 = Arc::clone(&s);
        let r = thread::spawn(move || opt_reader(&s1, revalidate));
        let s2 = Arc::clone(&s);
        let w = thread::spawn(move || opt_writer(&s2));
        r.join().unwrap();
        w.join().unwrap();
    }

    /// Optimistic read with the second version check: never torn.
    pub fn check_optimistic_read_validates() {
        lobster_sync::model(|| run_opt(true));
    }

    /// Optimistic read *without* revalidation; the checker must catch it.
    pub fn run_broken_optimistic_read() {
        lobster_sync::model(|| run_opt(false));
    }
}

pub mod claim {
    //! Core 2: `fault_many`'s CAS claim + rollback (PR 1).
    //!
    //! Two faulting threads race `EVICTED -> LOCKED` claims over two extents
    //! with only one free frame. Whatever the schedule: no claim is leaked
    //! (`LOCKED` left behind), no extent is loaded twice, and frames are
    //! conserved (resident + free == initial).

    use lobster_sync::atomic::{AtomicU64, Ordering};
    use lobster_sync::{thread, Arc};

    const EVICTED: u64 = u64::MAX;
    const LOCKED: u64 = u64::MAX - 1;
    const EXTENTS: usize = 2;

    struct Table {
        entries: [AtomicU64; EXTENTS],
        free_frames: AtomicU64,
        loads: [AtomicU64; EXTENTS],
    }

    fn fault_batch(t: &Table) {
        // Phase 1: claim every evicted extent we can (list order, as in
        // fault_many).
        let mut claimed = [false; EXTENTS];
        for (i, c) in claimed.iter_mut().enumerate() {
            *c = t.entries[i]
                .compare_exchange(EVICTED, LOCKED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok();
        }
        // Phase 2: allocate a frame per claim; roll back claims that lose
        // the allocation race (store EVICTED, exactly like fault_many's
        // rollback closure).
        for (i, &c) in claimed.iter().enumerate() {
            if !c {
                continue;
            }
            let mut got = false;
            loop {
                let f = t.free_frames.load(Ordering::Acquire);
                if f == 0 {
                    break;
                }
                if t.free_frames
                    .compare_exchange(f, f - 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    got = true;
                    break;
                }
            }
            if got {
                // "Load" the extent and publish it resident (tag 0).
                t.loads[i].fetch_add(1, Ordering::AcqRel);
                t.entries[i].store(i as u64, Ordering::Release);
            } else {
                t.entries[i].store(EVICTED, Ordering::Release);
            }
        }
    }

    fn run() {
        let t = Arc::new(Table {
            entries: [AtomicU64::new(EVICTED), AtomicU64::new(EVICTED)],
            free_frames: AtomicU64::new(1),
            loads: [AtomicU64::new(0), AtomicU64::new(0)],
        });
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let t = Arc::clone(&t);
                thread::spawn(move || fault_batch(&t))
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let mut resident = 0u64;
        for (i, e) in t.entries.iter().enumerate() {
            let v = e.load(Ordering::Acquire);
            assert_ne!(v, LOCKED, "leaked claim on extent {i}");
            if v != EVICTED {
                resident += 1;
            }
            let loads = t.loads[i].load(Ordering::Acquire);
            assert!(loads <= 1, "extent {i} loaded {loads} times");
        }
        // Frame conservation: every rollback must return nothing (it never
        // allocated) and every publish must consume exactly one frame.
        assert_eq!(
            resident + t.free_frames.load(Ordering::Acquire),
            1,
            "frames leaked or double-allocated"
        );
    }

    pub fn check_claim_rollback() {
        lobster_sync::model(run);
    }
}

pub mod frontier {
    //! Core 3: the two-stage commit pipeline (PR 3).
    //!
    //! A WAL-stage thread marks groups durable and forwards them; two flush
    //! workers complete them out of order. Invariants: a flush worker never
    //! observes a group whose WAL fsync has not happened, the durable-epoch
    //! frontier advances contiguously and monotonically, and no epoch
    //! completes twice.

    use lobster_sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use lobster_sync::{thread, Arc, Condvar, Mutex};
    use std::collections::BTreeSet;

    const GROUPS: usize = 2;

    struct Pipeline {
        wal_durable: [AtomicBool; GROUPS],
        ext_written: [AtomicBool; GROUPS],
        queue: Mutex<Vec<usize>>,
        queue_cv: Condvar,
        // Durable-epoch frontier, mirroring group_commit::Progress.
        processed: AtomicU64,
        done_above: Mutex<BTreeSet<u64>>,
        frontier_cv: Condvar,
        frontier_mx: Mutex<()>,
    }

    impl Pipeline {
        /// Mirror of `Progress::complete_epochs` with the auditor's
        /// exactly-once and contiguity checks inlined.
        fn complete_epoch(&self, epoch: u64) {
            let mut set = self.done_above.lock();
            let mut frontier = self.processed.load(Ordering::Acquire);
            assert!(epoch > frontier, "epoch {epoch} completed twice");
            assert!(set.insert(epoch), "epoch {epoch} already pending");
            while set.remove(&(frontier + 1)) {
                frontier += 1;
            }
            self.processed.store(frontier, Ordering::Release);
            drop(set);
            let _g = self.frontier_mx.lock();
            self.frontier_cv.notify_all();
        }
    }

    fn wal_stage(p: &Pipeline, broken: bool) {
        for g in 0..GROUPS {
            if !broken {
                // fsync happens-before the group is forwarded to flush.
                p.wal_durable[g].store(true, Ordering::Release);
            }
            p.queue.lock().push(g);
            p.queue_cv.notify_all();
            if broken {
                p.wal_durable[g].store(true, Ordering::Release);
            }
        }
    }

    fn flush_worker(p: &Pipeline) {
        let g = {
            let mut q = p.queue.lock();
            while q.is_empty() {
                p.queue_cv.wait(&mut q);
            }
            q.remove(0)
        };
        // The WAL-before-extents invariant: this group's fsync must already
        // be observable.
        assert!(
            p.wal_durable[g].load(Ordering::Acquire),
            "flush of group {g} observable before its WAL fsync"
        );
        p.ext_written[g].store(true, Ordering::Release);
        p.complete_epoch(g as u64 + 1);
    }

    fn run(broken: bool) {
        let p = Arc::new(Pipeline {
            wal_durable: [AtomicBool::new(false), AtomicBool::new(false)],
            ext_written: [AtomicBool::new(false), AtomicBool::new(false)],
            queue: Mutex::new(Vec::new()),
            queue_cv: Condvar::new(),
            processed: AtomicU64::new(0),
            done_above: Mutex::new(BTreeSet::new()),
            frontier_cv: Condvar::new(),
            frontier_mx: Mutex::new(()),
        });
        let mut hs = Vec::new();
        for _ in 0..2 {
            let p2 = Arc::clone(&p);
            hs.push(thread::spawn(move || flush_worker(&p2)));
        }
        let p1 = Arc::clone(&p);
        hs.push(thread::spawn(move || wal_stage(&p1, broken)));
        for h in hs {
            h.join().unwrap();
        }
        // Frontier reached the last epoch, and nothing is left pending.
        assert_eq!(p.processed.load(Ordering::Acquire), GROUPS as u64);
        assert!(p.done_above.lock().is_empty());
        for g in 0..GROUPS {
            assert!(p.ext_written[g].load(Ordering::Acquire));
            assert!(p.wal_durable[g].load(Ordering::Acquire));
        }
    }

    /// The correct pipeline: fsync strictly before forward.
    pub fn check_wal_before_extents() {
        lobster_sync::model(|| run(false));
    }

    /// Broken ordering (group forwarded before its fsync); the checker must
    /// find a schedule where a flush worker sees a non-durable group.
    pub fn run_broken_ordering() {
        lobster_sync::model(|| run(true));
    }
}

pub mod pins {
    //! Core 4: `prevent_evict` pins and the commit pin budget.
    //!
    //! Committers acquire budget, pin + dirty an extent, and hand it to a
    //! flusher that clears the pin and returns the budget — exactly once.
    //! An evictor races try-CAS evictions. Invariants: the pin is released
    //! once (a second release trips the ledger), the budget never goes
    //! negative, and eviction only ever sees flushed, unpinned extents.

    use lobster_sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use lobster_sync::{thread, Arc, Condvar, Mutex};

    const PIN: u64 = 1 << 55;
    const DIRTY: u64 = 1 << 54;
    const EVICTED: u64 = u64::MAX;

    struct Budget {
        used: Mutex<u64>,
        cv: Condvar,
        limit: u64,
    }

    impl Budget {
        fn acquire(&self, n: u64) {
            let mut used = self.used.lock();
            // Mirror of PinBudget::acquire: always admit when idle so a
            // single oversized batch cannot deadlock.
            while *used > 0 && *used + n > self.limit {
                self.cv.wait(&mut used);
            }
            *used += n;
        }

        fn release(&self, n: u64) {
            let mut used = self.used.lock();
            assert!(*used >= n, "pin budget went negative: {} - {n}", *used);
            *used -= n;
            self.cv.notify_all();
        }
    }

    struct World {
        entries: [AtomicU64; 2],
        flushed: [AtomicBool; 2],
        releases: [AtomicU64; 2],
        budget: Budget,
    }

    fn committer(w: &World, i: usize) {
        w.budget.acquire(1);
        // Create resident, dirty, pinned (as the commit path does before
        // handing the extent to the flush stage). The extent starts
        // evicted, so the evictor never sees a resident-but-unflushed
        // window before this store.
        let prev = w.entries[i].swap(PIN | DIRTY, Ordering::AcqRel);
        assert_eq!(prev, EVICTED, "extent {i} created twice");
        // The device write completes (IO reaped by poll) strictly before
        // flush completion clears the flags — mirroring flush_extents_finish,
        // which only runs after the async batch is done.
        w.flushed[i].store(true, Ordering::Release);
        // Flush completion: clear dirty+pin exactly once, then return the
        // budget (PR 3 moved budget release to flush completion).
        let prev = w.entries[i].swap(0, Ordering::AcqRel);
        assert_eq!(prev & PIN, PIN, "pin released twice on extent {i}");
        let n = w.releases[i].fetch_add(1, Ordering::AcqRel);
        assert_eq!(n, 0, "flush completion ran twice for extent {i}");
        w.budget.release(1);
    }

    fn evictor(w: &World) {
        for i in 0..2 {
            for _ in 0..3 {
                let e = w.entries[i].load(Ordering::Acquire);
                if e == EVICTED || e & (PIN | DIRTY) != 0 {
                    continue; // pinned or dirty: not evictable
                }
                if w.entries[i]
                    .compare_exchange(e, EVICTED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // We evicted it, so its flush must have completed.
                    assert!(
                        w.flushed[i].load(Ordering::Acquire),
                        "extent {i} evicted before flush completion"
                    );
                    break;
                }
            }
        }
    }

    fn run() {
        let w = Arc::new(World {
            entries: [AtomicU64::new(EVICTED), AtomicU64::new(EVICTED)],
            flushed: [AtomicBool::new(false), AtomicBool::new(false)],
            releases: [AtomicU64::new(0), AtomicU64::new(0)],
            budget: Budget {
                used: Mutex::new(0),
                cv: Condvar::new(),
                limit: 1,
            },
        });
        let mut hs = Vec::new();
        for i in 0..2 {
            let w2 = Arc::clone(&w);
            hs.push(thread::spawn(move || committer(&w2, i)));
        }
        let w3 = Arc::clone(&w);
        hs.push(thread::spawn(move || evictor(&w3)));
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*w.budget.used.lock(), 0, "budget not fully returned");
        for i in 0..2 {
            assert_eq!(w.releases[i].load(Ordering::Acquire), 1);
        }
    }

    pub fn check_pin_release_exactly_once() {
        lobster_sync::model(run);
    }
}

pub mod xshard {
    //! Core 5: the cross-shard commit epoch from `ShardedDatabase`.
    //!
    //! Each shard runs an independent group-commit pipeline whose stage-1
    //! fsync advances a *local* durable-epoch frontier. A cross-shard
    //! transaction appends a commit marker to every participant's WAL (all
    //! landing in the same commit epoch here) and is durable only once the
    //! *global* epoch — the minimum over participant frontiers — covers
    //! that epoch. The model separates what a shard has *persisted* (the
    //! crash image) from what it *advertises* as durable, so the checked
    //! invariant is the real one: when the coordinator declares the
    //! transaction durable, a crash at that instant still finds the marker
    //! on every participant's disk.
    //!
    //! Broken canaries: advancing the global epoch from one shard's
    //! frontier only, and covering a stale epoch (off by one) — both must
    //! be caught under loom.

    use lobster_sync::atomic::{AtomicU64, Ordering};
    use lobster_sync::{hint, thread, Arc};

    const SHARDS: usize = 2;
    /// Epoch 1 on each shard carries an unrelated single-shard commit; the
    /// cross-shard marker lands in epoch 2. A stale-epoch coordinator is
    /// satisfied by the first fsync alone.
    const MARKER_EPOCH: u64 = 2;

    #[derive(Clone, Copy)]
    enum Variant {
        /// Global epoch = min over all participant frontiers.
        Correct,
        /// Global epoch advanced from shard 0's frontier only.
        OneShard,
        /// All shards consulted, but against `MARKER_EPOCH - 1`.
        StaleEpoch,
    }

    struct Shard {
        /// Highest epoch whose records are physically on disk (the image a
        /// crash would recover from).
        persisted: AtomicU64,
        /// Highest epoch whose stage-1 fsync completion was published to
        /// the coordinator. Always stored *after* `persisted`.
        durable: AtomicU64,
    }

    fn shard_pipeline(sh: &Shard) {
        // Two group-commit rounds: the local txn's epoch, then the epoch
        // holding the cross-shard marker. Each round persists before it
        // publishes — the per-shard stage-1 contract.
        for e in 1..=MARKER_EPOCH {
            sh.persisted.store(e, Ordering::Release);
            sh.durable.store(e, Ordering::Release);
        }
    }

    fn coordinator(shards: &[Shard; SHARDS], variant: Variant) {
        let mut prev_global = 0u64;
        // Bounded wait, as everywhere in these models: give up rather than
        // spin forever so the explorer terminates. Invariants fire only on
        // schedules where the decision was actually reached.
        for _ in 0..8 {
            let global = match variant {
                Variant::Correct | Variant::StaleEpoch => (0..SHARDS)
                    .map(|s| shards[s].durable.load(Ordering::Acquire))
                    .min()
                    .unwrap(),
                Variant::OneShard => shards[0].durable.load(Ordering::Acquire),
            };
            assert!(global >= prev_global, "global epoch moved backwards");
            prev_global = global;
            let needed = match variant {
                Variant::StaleEpoch => MARKER_EPOCH - 1,
                _ => MARKER_EPOCH,
            };
            if global >= needed {
                // Durability declared: a crash now must still recover the
                // marker on every participant.
                for (s, sh) in shards.iter().enumerate() {
                    let img = sh.persisted.load(Ordering::Acquire);
                    assert!(
                        img >= MARKER_EPOCH,
                        "gtxn declared durable but shard {s} only persisted \
                         epoch {img} < {MARKER_EPOCH}"
                    );
                }
                return;
            }
            hint::spin_loop();
        }
    }

    fn run(variant: Variant) {
        let shards = Arc::new([
            Shard {
                persisted: AtomicU64::new(0),
                durable: AtomicU64::new(0),
            },
            Shard {
                persisted: AtomicU64::new(0),
                durable: AtomicU64::new(0),
            },
        ]);
        let mut hs = Vec::new();
        for s in 0..SHARDS {
            let sh = Arc::clone(&shards);
            hs.push(thread::spawn(move || shard_pipeline(&sh[s])));
        }
        let sh = Arc::clone(&shards);
        hs.push(thread::spawn(move || coordinator(&sh, variant)));
        for h in hs {
            h.join().unwrap();
        }
    }

    /// The correct protocol: min-over-frontiers, marker epoch required.
    pub fn check_epoch_covers_all_participants() {
        lobster_sync::model(|| run(Variant::Correct));
    }

    /// Broken canary 1: the global epoch follows one shard's frontier;
    /// the checker must find the schedule where the other shard's marker
    /// is not yet on disk.
    pub fn run_broken_single_shard_epoch() {
        lobster_sync::model(|| run(Variant::OneShard));
    }

    /// Broken canary 2: every shard is consulted but against a stale
    /// epoch; the first fsync satisfies it before the marker persists.
    pub fn run_broken_stale_epoch() {
        lobster_sync::model(|| run(Variant::StaleEpoch));
    }
}
