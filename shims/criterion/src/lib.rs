//! Offline stand-in for the `criterion` crate.
//!
//! Same surface API the workspace benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput` — over a plain timing
//! loop: warm up, then run `sample_size` samples and report mean / min /
//! max wall time (plus derived throughput when one was declared). No
//! statistical analysis, no HTML reports, no baseline comparisons.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

// ------------------------------------------------------------------- ids ---

pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Identifier forms accepted by `bench_function` / `bench_with_input`.
pub trait IntoBenchmarkId {
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_text(self) -> String {
        self
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

// --------------------------------------------------------------- bencher ---

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Timed loop: warm up for `warm_up_time`, then collect `sample_size`
    /// samples, each batching enough iterations to be measurable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also used to size the per-sample batch.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            iters += 1;
        }
        let per_iter = self.warm_up_time.as_secs_f64() / iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(Duration::from_secs_f64(
                t.elapsed().as_secs_f64() / batch as f64,
            ));
        }
    }
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn human_rate(bytes_per_sec: f64) -> String {
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MIB: f64 = 1024.0 * 1024.0;
    if bytes_per_sec >= GIB {
        format!("{:.2} GiB/s", bytes_per_sec / GIB)
    } else {
        format!("{:.1} MiB/s", bytes_per_sec / MIB)
    }
}

// ------------------------------------------------------------- criterion ---

#[derive(Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Ungrouped convenience entry point.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        self.run(id.into_text(), |b| f(b));
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(id.into_text(), |b| f(b, input));
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
        };
        f(&mut bencher);

        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        if bencher.samples.is_empty() {
            println!("{label:<40} (no samples — iter() never called)");
            return;
        }
        let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
        let min = *bencher.samples.iter().min().unwrap();
        let max = *bencher.samples.iter().max().unwrap();
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {}", human_rate(n as f64 / mean.as_secs_f64()))
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            None => String::new(),
        };
        println!(
            "{label:<40} time: [{} {} {}]{rate}",
            human_time(min),
            human_time(mean),
            human_time(max),
        );
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(64));
        let mut calls = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("plan", 42).to_string(), "plan/42");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
