//! Buffer management for LOBSTER (§III-G and §IV of the paper).
//!
//! Two pool designs are provided, matching the paper's comparison:
//!
//! * [`ExtentPool`] — the vmcache-style pool: a flat page table with CAS
//!   state transitions, **extent-granular (coarse) latching**, contiguous
//!   frame ranges per extent, size-fair randomized eviction, a
//!   `prevent_evict` pin used by the single-flush commit protocol, and
//!   **virtual-memory aliasing** that presents multi-extent BLOBs as one
//!   contiguous zero-copy view ([`AliasingManager`], memfd+mmap — see
//!   DESIGN.md substitution 2).
//! * [`HashTablePool`] — the traditional design (`Our.ht` baseline):
//!   per-page hash-map translation, scattered frames, malloc+memcpy reads.
//!
//! [`BlobPool`] is the configuration-selected facade the engine uses.

// Every `unsafe` block must carry a `// SAFETY:` justification; enforced
// in CI via clippy (`undocumented_unsafe_blocks`).
#![deny(clippy::undocumented_unsafe_blocks)]

mod alias;
mod arena;
mod blob_pool;
mod htpool;
mod pool;
mod stream;

pub use alias::{AliasConfig, AliasGuard, AliasStats, AliasingManager};
pub use arena::{Arena, OS_PAGE};
pub use blob_pool::{BlobPool, FlushTicket};
pub use htpool::{HashTablePool, HtFlushBatch};
pub use pool::{ExtentFlushBatch, ExtentPool, FlushItem, PoolConfig, ShGuard, XGuard};
pub use stream::PinGate;

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_extent::ExtentSpec;
    use lobster_storage::{Device, MemDevice};
    use lobster_sync::Arc;
    use lobster_types::{Geometry, Pid};

    fn vm_pool(frames: u64, alias: bool) -> Arc<ExtentPool> {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(16 << 20));
        let cfg = PoolConfig {
            frames,
            alias: alias.then_some(AliasConfig {
                workers: 2,
                worker_local_bytes: 64 * 1024,
                shared_bytes: 512 * 1024,
            }),
            io_threads: 2,
            batched_faults: true,
            io_retries: 3,
        };
        ExtentPool::new(
            dev,
            Geometry::new(4096),
            cfg,
            lobster_metrics::new_metrics(),
        )
    }

    #[test]
    fn create_flush_evict_reload() {
        let pool = vm_pool(64, false);
        let spec = ExtentSpec::new(Pid::new(5), 4);
        let data: Vec<u8> = (0..4 * 4096).map(|i| (i % 253) as u8).collect();
        {
            let mut g = pool.create_extent(spec).unwrap();
            g[..].copy_from_slice(&data);
            g.mark_dirty();
            g.set_prevent_evict();
        }
        assert!(pool.is_dirty(spec.start));
        pool.flush_extents(&[FlushItem::whole(spec)]).unwrap();
        assert!(!pool.is_dirty(spec.start), "flush must clean the extent");
        pool.drop_extent(spec);
        assert!(!pool.is_resident(spec.start));

        let g = pool.read_extent(spec).unwrap();
        assert_eq!(&g[..], &data[..]);
    }

    #[test]
    fn shared_guards_are_concurrent() {
        let pool = vm_pool(64, false);
        let spec = ExtentSpec::new(Pid::new(0), 2);
        {
            let mut g = pool.create_extent(spec).unwrap();
            g.fill(3);
            g.mark_dirty();
        }
        let g1 = pool.read_extent(spec).unwrap();
        let g2 = pool.read_extent(spec).unwrap();
        assert_eq!(g1[0], 3);
        assert_eq!(g2[0], 3);
    }

    #[test]
    fn eviction_frees_frames_under_pressure() {
        let pool = vm_pool(16, false);
        // Create 8 extents of 4 pages = 32 pages > 16 frames; older ones
        // must be evicted (they are clean after flush).
        for e in 0..8u64 {
            let spec = ExtentSpec::new(Pid::new(e * 4), 4);
            {
                let mut g = pool.create_extent(spec).unwrap();
                g.fill(e as u8);
                g.mark_dirty();
            }
            pool.flush_extents(&[FlushItem::whole(spec)]).unwrap();
        }
        assert!(pool.frames_in_use() <= 16);
        // Every extent must still be readable (reloaded from device).
        for e in 0..8u64 {
            let spec = ExtentSpec::new(Pid::new(e * 4), 4);
            let g = pool.read_extent(spec).unwrap();
            assert!(g.iter().all(|&b| b == e as u8), "extent {e} corrupted");
        }
    }

    #[test]
    fn prevent_evict_blocks_eviction() {
        let pool = vm_pool(8, false);
        let pinned = ExtentSpec::new(Pid::new(0), 4);
        {
            let mut g = pool.create_extent(pinned).unwrap();
            g.fill(0xAA);
            g.mark_dirty();
            g.set_prevent_evict();
        }
        // Fill the rest of the pool; the pinned extent must survive.
        for e in 1..6u64 {
            let spec = ExtentSpec::new(Pid::new(e * 4), 4);
            if let Ok(mut g) = pool.create_extent(spec) {
                g.fill(e as u8);
                g.mark_dirty();
            }
            pool.flush_extents(&[FlushItem::whole(spec)]).ok();
        }
        assert!(pool.is_resident(pinned.start), "pinned extent evicted");
        assert!(pool.is_dirty(pinned.start), "pinned extent must stay dirty");
    }

    #[test]
    fn streaming_lease_pins_and_unpins() {
        let pool = vm_pool(8, false);
        let leased = ExtentSpec::new(Pid::new(0), 4);
        {
            let mut g = pool.create_extent(leased).unwrap();
            g.fill(0x5A);
            g.mark_dirty();
        }
        pool.flush_extents(&[FlushItem::whole(leased)]).unwrap();
        assert!(!pool.is_dirty(leased.start), "flushed extent must be clean");

        pool.lease_extent(leased).unwrap();
        #[cfg(debug_assertions)]
        assert_eq!(
            pool.audit().leaked_pins(),
            vec![leased.start.raw()],
            "lease must register in the pin ledger"
        );

        // Fill the pool well past capacity; the clean-but-leased extent
        // must survive every eviction pass.
        for e in 1..6u64 {
            let spec = ExtentSpec::new(Pid::new(e * 4), 4);
            if let Ok(mut g) = pool.create_extent(spec) {
                g.fill(e as u8);
                g.mark_dirty();
            }
            pool.flush_extents(&[FlushItem::whole(spec)]).ok();
        }
        assert!(pool.is_resident(leased.start), "leased extent evicted");

        // Chunk reads see the leased bytes without re-faulting.
        let before = pool.metrics().snapshot();
        pool.read_chunk(leased, 4096 + 7, 100, |b| {
            assert_eq!(b.len(), 100);
            assert!(b.iter().all(|&x| x == 0x5A));
        })
        .unwrap();
        let delta = pool.metrics().snapshot() - before;
        assert_eq!(delta.cache_misses, 0, "leased chunk read must be a hit");

        pool.unlease_extent(leased);
        #[cfg(debug_assertions)]
        assert!(
            pool.audit().leaked_pins().is_empty(),
            "unlease must clear the pin ledger"
        );
    }

    #[test]
    fn read_chunk_refaults_after_eviction() {
        let pool = vm_pool(8, false);
        let spec = ExtentSpec::new(Pid::new(0), 2);
        {
            let mut g = pool.create_extent(spec).unwrap();
            g.fill(0xC3);
            g.mark_dirty();
        }
        pool.flush_extents(&[FlushItem::whole(spec)]).unwrap();
        pool.drop_extent(spec);
        assert!(!pool.is_resident(spec.start));
        // A chunk read on a non-resident extent faults it back in — losing
        // a lease costs a re-read, never an error.
        pool.read_chunk(spec, 4095, 2, |b| assert_eq!(b, [0xC3, 0xC3]))
            .unwrap();
        assert!(pool.is_resident(spec.start));
    }

    #[test]
    fn multi_extent_blob_read_zero_copy() {
        let pool = vm_pool(64, true);
        let e1 = ExtentSpec::new(Pid::new(0), 1);
        let e2 = ExtentSpec::new(Pid::new(10), 2);
        {
            let mut g = pool.create_extent(e1).unwrap();
            g.fill(1);
            g.mark_dirty();
        }
        {
            let mut g = pool.create_extent(e2).unwrap();
            g.fill(2);
            g.mark_dirty();
        }
        let len = 3 * 4096 - 100; // logical size ends mid-page
        let before = pool.metrics().snapshot();
        pool.read_blob(0, &[e1, e2], len as u64, |view| {
            assert_eq!(view.len(), len);
            assert!(view[..4096].iter().all(|&b| b == 1));
            assert!(view[4096..].iter().all(|&b| b == 2));
        })
        .unwrap();
        let delta = pool.metrics().snapshot() - before;
        if pool.aliasing_enabled() {
            assert_eq!(delta.memcpy_bytes, 0, "aliased read must be zero-copy");
            assert!(delta.alias_ops > 0);
        }
    }

    #[test]
    fn single_extent_blob_read_needs_no_alias() {
        let pool = vm_pool(64, true);
        let e = ExtentSpec::new(Pid::new(0), 2);
        {
            let mut g = pool.create_extent(e).unwrap();
            g.fill(9);
            g.mark_dirty();
        }
        let before = pool.metrics().snapshot();
        pool.read_blob(0, &[e], 5000, |view| assert_eq!(view.len(), 5000))
            .unwrap();
        let delta = pool.metrics().snapshot() - before;
        assert_eq!(delta.alias_ops, 0, "single extent is already contiguous");
        assert_eq!(delta.memcpy_bytes, 0);
    }

    #[test]
    fn blob_pool_facade_roundtrip_both_variants() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(16 << 20));
        let geo = Geometry::new(4096);
        let m = lobster_metrics::new_metrics();
        let variants = vec![
            BlobPool::Vm(ExtentPool::new(
                dev.clone(),
                geo,
                PoolConfig {
                    frames: 64,
                    alias: None,
                    io_threads: 1,
                    batched_faults: true,
                    io_retries: 3,
                },
                m.clone(),
            )),
            BlobPool::Ht(HashTablePool::new(dev.clone(), geo, 64, m.clone())),
        ];
        for (vi, pool) in variants.into_iter().enumerate() {
            let spec = ExtentSpec::new(Pid::new(100 + (vi as u64) * 10), 3);
            let data: Vec<u8> = (0..3 * 4096).map(|i| ((i + vi) % 251) as u8).collect();
            pool.fill_extent(spec, &data).unwrap();
            pool.flush_extents(&[FlushItem::whole(spec)]).unwrap();
            pool.drop_extents(&[spec]);
            let out = pool
                .read_blob(0, &[spec], data.len() as u64, |b| b.to_vec())
                .unwrap();
            assert_eq!(out, data, "variant {vi}");
        }
    }

    #[test]
    fn coarse_latching_one_load_for_concurrent_readers() {
        let pool = vm_pool(64, false);
        let spec = ExtentSpec::new(Pid::new(0), 8);
        {
            let mut g = pool.create_extent(spec).unwrap();
            g.fill(7);
            g.mark_dirty();
        }
        pool.flush_extents(&[FlushItem::whole(spec)]).unwrap();
        pool.drop_extent(spec);

        let before = pool.metrics().snapshot();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let p = &pool;
                s.spawn(move || {
                    let g = p.read_extent(spec).unwrap();
                    assert_eq!(g[0], 7);
                });
            }
        });
        let delta = pool.metrics().snapshot() - before;
        assert_eq!(delta.cache_misses, 1, "exactly one thread loads the extent");
        assert_eq!(delta.pages_read, 8);
    }
}
