//! Serving curve: `lobster-serve` over real loopback TCP vs the paper's
//! modeled client/server overhead, swept over connection counts.
//!
//! The paper's PostgreSQL/MySQL baselines *charge* a per-statement
//! client/server cost (`ClientSideCost::unix_socket()`: a 25 µs round
//! trip plus 40 ns/KiB serialization, see `lobster-baselines::dbms`) on
//! top of the store's own work. `lobster-serve` makes that cost real —
//! a binary protocol served straight out of the buffer pool under
//! streaming leases — and this bench puts both on the same axis:
//! closed-loop GETs of 4 KiB payloads at `connections = {1, 4, 16}`.
//!
//! The model burns its charge as CPU (`spin_loop`, no yield) rather than
//! idle wall time: the modeled round trip is dominated by kernel
//! crossings, socket-stack work, and statement parse/serialize, which a
//! real single-core server pays serially per statement. Charging it as
//! sleepable wall time would let an N-connection model overlap N round
//! trips on one core — parallelism a real client/server DBMS does not
//! have there — while the served side is measured against real scheduler
//! and syscall costs. Both sides run the same closed-loop driver with
//! real OS threads (serve clients are I/O-bound; model clients *are* the
//! server's statement loop).

use crate::*;
use lobster_core::{RelationKind, ShardDevices, ShardedDatabase};
use lobster_serve::{ServeConfig, Server};
use lobster_workloads::driver::{run_closed_loop, OpOutcome};
use lobster_workloads::make_payload;
use lobster_workloads::serve_load::{key_for, populate, run_serve_load, ServeLoad};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Payload size for the sweep: 4 KiB — large enough that a GET streams a
/// real extent range, small enough that the modeled 25 µs round trip
/// (not transfer bandwidth) dominates the baseline, mirroring the
/// paper's point-operation regime.
const PAYLOAD: usize = 4096;

/// Connection counts; the committed baseline gates each row, so the
/// axis is fixed rather than host-derived.
const CONNS: [usize; 3] = [1, 4, 16];

/// Shards (and served worker slots) for the engine under test.
const SHARDS: usize = 4;

pub(crate) fn run(report: &mut Report) {
    banner(
        "Serving curve — lobster-serve vs modeled client/server",
        "§II / §V-B client-server overhead, served for real",
    );
    let nkeys = scaled(2048).max(64);
    let ops_per_conn = scaled(6000).max(300) as u64;
    let keys: Vec<Vec<u8>> = (0..nkeys)
        .map(|i| format!("serve{i:06}").into_bytes())
        .collect();

    let mut table = Table::new(&[
        "connections",
        "system",
        "ops/s",
        "p50",
        "p95",
        "p99",
        "busy/retry",
    ]);

    // ---------------------------------------------- real served side ---
    let parts = (0..SHARDS)
        .map(|_| ShardDevices {
            data: mem_device(256 << 20),
            wal: mem_device(64 << 20),
        })
        .collect();
    let sdb = ShardedDatabase::create(parts, our_config(SHARDS)).expect("create engine");
    let rel = sdb
        .create_relation("blobs", RelationKind::Blob)
        .expect("create relation");
    let engine = Arc::clone(&sdb);
    let handle = Server::start(
        sdb,
        rel,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = handle.local_addr().to_string();
    populate(&addr, &keys, PAYLOAD);
    engine
        .wait_for_durability()
        .expect("quiesce after populate");

    let mut served_rates = Vec::new();
    for c in CONNS {
        let before = engine.metrics().snapshot();
        let run = run_serve_load(&ServeLoad {
            addr: addr.clone(),
            connections: c,
            ops_per_conn,
            keys: keys.clone(),
        });
        let delta = engine.metrics().snapshot() - before;
        let rate = run.ops_per_sec();
        let s = run.latency.summary();
        served_rates.push(rate);
        table.row(&[
            format!("{c}"),
            "Ours.served".into(),
            fmt_rate(rate),
            lobster_metrics::fmt_ns(s.p50_ns),
            lobster_metrics::fmt_ns(s.p95_ns),
            lobster_metrics::fmt_ns(s.p99_ns),
            format!("{}", run.retries),
        ]);
        report.push(
            Entry::throughput("Ours.served", rate)
                .param("payload", "4KiB")
                .param("connections", c)
                .latency("op", s)
                .counters(delta),
        );
        report.push(
            Entry::new("Ours.served", "p99", "ns", s.p99_ns as f64, false)
                .param("payload", "4KiB")
                .param("connections", c),
        );
    }
    // The last client sees its final body byte while the server session
    // is still unwinding its stream (lease release happens on drop a few
    // microseconds later), so poll instead of asserting instantly.
    let deadline = Instant::now() + Duration::from_secs(2);
    while handle.pin_gate_in_use() != 0 && Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(handle.pin_gate_in_use(), 0, "streaming leases leaked");
    handle.shutdown().expect("graceful shutdown");

    // ------------------------------------------------- modeled side ---
    // Same engine configuration, driven in-process with the paper's
    // client/server charge per statement. One worker id per modeled
    // connection (a backend per connection, as PostgreSQL would).
    let parts = (0..SHARDS)
        .map(|_| ShardDevices {
            data: mem_device(256 << 20),
            wal: mem_device(64 << 20),
        })
        .collect();
    let max_c = *CONNS.iter().max().unwrap();
    let mcfg = our_config(max_c);
    let msdb = ShardedDatabase::create(parts, mcfg).expect("create model engine");
    let mrel = msdb
        .create_relation("blobs", RelationKind::Blob)
        .expect("create model relation");
    for chunk in (0..nkeys).collect::<Vec<_>>().chunks(256) {
        let mut txn = msdb.begin();
        for &i in chunk {
            let data = make_payload(PAYLOAD, i as u64 + 1);
            txn.put_blob(&mrel, &keys[i], &data).expect("model load");
        }
        txn.commit().expect("model load commit");
    }
    msdb.wait_for_durability().expect("model quiesce");

    // charge() from lobster-baselines::dbms, reproduced here (it is
    // private): round trip + per-KiB transfer, plus the two
    // serialization copies — performed for real, not counter-bumped.
    let overhead =
        Duration::from_micros(25) + Duration::from_nanos(40) * (PAYLOAD as u32).div_ceil(1024);
    let scratch: Vec<Mutex<(Vec<u8>, Vec<u8>)>> = (0..max_c)
        .map(|_| Mutex::new((vec![0u8; PAYLOAD], vec![0u8; PAYLOAD])))
        .collect();

    let mut model_rates = Vec::new();
    for c in CONNS {
        let exec = |w: usize, op: u64| {
            let mut guard = scratch[w].lock().unwrap();
            let (wire, resp) = &mut *guard;
            let key = key_for(&keys, w, op);
            let mut txn = msdb.begin_with_worker(w);
            let n = txn.get_blob_range(&mrel, key, 0, wire).expect("model read");
            txn.commit().expect("model commit");
            resp[..n].copy_from_slice(&wire[..n]); // the socket-write copy
            std::hint::black_box(&resp[..n]);
            burn(overhead);
            OpOutcome::Done
        };
        let run = run_closed_loop(c, ops_per_conn, exec);
        let rate = run.ops_per_sec();
        let s = run.latency.summary();
        model_rates.push(rate);
        table.row(&[
            format!("{c}"),
            "baseline.client_server_model".into(),
            fmt_rate(rate),
            lobster_metrics::fmt_ns(s.p50_ns),
            lobster_metrics::fmt_ns(s.p95_ns),
            lobster_metrics::fmt_ns(s.p99_ns),
            format!("{}", run.retries),
        ]);
        // Informational (non-gated metric name): the model is a constant,
        // not a regression-gated artifact of this repo's code.
        report.push(
            Entry::new(
                "baseline.client_server_model",
                "ops_per_s",
                "ops/s",
                rate,
                true,
            )
            .param("payload", "4KiB")
            .param("connections", c)
            .latency("op", s),
        );
    }
    msdb.wait_for_durability().expect("model quiesce");
    msdb.shutdown().expect("model shutdown");
    table.print();

    let best_served = served_rates.iter().cloned().fold(0.0f64, f64::max);
    let best_model = model_rates.iter().cloned().fold(0.0f64, f64::max);
    let ratio = best_served / best_model.max(1e-9);
    println!("\nServed vs modeled client/server (best over sweep): {ratio:.2}x (target >1x)");
    report.push(Entry::new(
        "Ours.served",
        "speedup_vs_model",
        "x",
        ratio,
        true,
    ));
}

/// The model's `spin`, reproduced from `lobster-baselines::dbms` but
/// burning CPU unconditionally (no yield): see the module docs for why
/// the charge must serialize on a single-core host.
fn burn(d: Duration) {
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}
