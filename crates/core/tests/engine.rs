//! End-to-end tests of the LOBSTER engine: BLOB life-cycle, the
//! single-flush commit protocol, transactions, and crash recovery.

use lobster_core::{
    BlobLogging, BlobStateCmp, Config, Database, ExpressionIndex, PoolVariant, RelationKind,
    TierPolicy, Txn, UpdatePolicy,
};
use lobster_sha256::Sha256;
use lobster_storage::{CrashDevice, Device, MemDevice};
use lobster_types::Error;
use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::Arc;

fn small_cfg() -> Config {
    Config {
        pool_frames: 4096, // 16 MiB
        workers: 4,
        ..Config::default()
    }
}

fn mem_db(cfg: Config) -> Arc<Database> {
    let dev = Arc::new(MemDevice::new(256 << 20));
    let wal = Arc::new(MemDevice::new(64 << 20));
    Database::create(dev, wal, cfg).unwrap()
}

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        })
        .collect()
}

fn put(db: &Arc<Database>, rel: &lobster_core::Relation, key: &[u8], data: &[u8]) {
    let mut t = db.begin();
    t.put_blob(rel, key, data).unwrap();
    t.commit().unwrap();
}

fn get(db: &Arc<Database>, rel: &lobster_core::Relation, key: &[u8]) -> Vec<u8> {
    let mut t = db.begin();
    let out = t.get_blob(rel, key, |b| b.to_vec()).unwrap();
    t.commit().unwrap();
    out
}

// ------------------------------------------------------------ lifecycle ---

#[test]
fn roundtrip_many_sizes() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("blobs", RelationKind::Blob).unwrap();
    // Sizes straddling page and extent boundaries.
    for (i, size) in [
        0usize, 1, 63, 64, 120, 4095, 4096, 4097, 12288, 100_000, 1_000_000,
    ]
    .iter()
    .enumerate()
    {
        let key = format!("k{i}");
        let data = pattern(*size, i as u64);
        put(&db, &rel, key.as_bytes(), &data);
        assert_eq!(get(&db, &rel, key.as_bytes()), data, "size {size}");
    }
}

#[test]
fn tail_extents_roundtrip_and_save_space() {
    let mut cfg = small_cfg();
    cfg.use_tail_extents = true;
    let db = mem_db(cfg);
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let data = pattern(6 * 4096, 1); // Figure 1: 6 pages -> 1+2 extents + 3-page tail
    put(&db, &rel, b"six", &data);

    let mut t = db.begin();
    let state = t.blob_state(&rel, b"six").unwrap().unwrap();
    t.commit().unwrap();
    assert_eq!(state.extents.len(), 2);
    assert_eq!(state.tail.map(|(_, p)| p), Some(3));
    assert_eq!(state.capacity_pages(db.tier_table()), 6, "no slack at all");
    assert_eq!(get(&db, &rel, b"six"), data);
}

#[test]
fn duplicate_key_and_missing_key_errors() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    put(&db, &rel, b"k", b"data");
    let mut t = db.begin();
    assert!(matches!(
        t.put_blob(&rel, b"k", b"other"),
        Err(Error::KeyExists)
    ));
    drop(t);
    let mut t = db.begin();
    assert!(matches!(
        t.get_blob(&rel, b"missing", |_| ()),
        Err(Error::KeyNotFound)
    ));
    assert!(matches!(
        t.delete_blob(&rel, b"missing"),
        Err(Error::KeyNotFound)
    ));
    drop(t);
}

#[test]
fn blob_state_metadata_is_correct() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let data = pattern(200_000, 9);
    put(&db, &rel, b"k", &data);
    let mut t = db.begin();
    let state = t.blob_state(&rel, b"k").unwrap().unwrap();
    t.commit().unwrap();
    assert_eq!(state.size, 200_000);
    assert_eq!(state.sha256, Sha256::digest(&data));
    assert_eq!(&state.prefix[..], &data[..32]);
}

#[test]
fn get_blob_range_clamps() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let data = pattern(10_000, 3);
    put(&db, &rel, b"k", &data);
    let mut t = db.begin();
    let mut buf = vec![0u8; 4000];
    let n = t.get_blob_range(&rel, b"k", 8000, &mut buf).unwrap();
    assert_eq!(n, 2000);
    assert_eq!(&buf[..n], &data[8000..]);
    let n = t.get_blob_range(&rel, b"k", 20_000, &mut buf).unwrap();
    assert_eq!(n, 0);
    t.commit().unwrap();
}

// ---------------------------------------------------------------- growth ---

#[test]
fn append_resumes_sha_and_preserves_content() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let mut full = pattern(10_000, 7);
    put(&db, &rel, b"k", &full);

    for (i, grow) in [1usize, 63, 64, 5000, 100_000].iter().enumerate() {
        let extra = pattern(*grow, 100 + i as u64);
        let mut t = db.begin();
        t.append_blob(&rel, b"k", &extra).unwrap();
        t.commit().unwrap();
        full.extend_from_slice(&extra);
    }
    assert_eq!(get(&db, &rel, b"k"), full);
    let mut t = db.begin();
    let state = t.blob_state(&rel, b"k").unwrap().unwrap();
    t.commit().unwrap();
    assert_eq!(state.size as usize, full.len());
    assert_eq!(
        state.sha256,
        Sha256::digest(&full),
        "resumed hash must equal full hash"
    );
}

#[test]
fn append_to_tail_extent_blob_clones_tail() {
    let mut cfg = small_cfg();
    cfg.use_tail_extents = true;
    let db = mem_db(cfg);
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let mut full = pattern(6 * 4096, 4);
    put(&db, &rel, b"k", &full);

    let extra = pattern(3 * 4096, 5);
    let mut t = db.begin();
    t.append_blob(&rel, b"k", &extra).unwrap();
    t.commit().unwrap();
    full.extend_from_slice(&extra);
    assert_eq!(get(&db, &rel, b"k"), full);

    let mut t = db.begin();
    let state = t.blob_state(&rel, b"k").unwrap().unwrap();
    t.commit().unwrap();
    assert_eq!(state.sha256, Sha256::digest(&full));
}

#[test]
fn append_to_empty_blob() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    put(&db, &rel, b"k", b"");
    let data = pattern(5000, 11);
    let mut t = db.begin();
    t.append_blob(&rel, b"k", &data).unwrap();
    t.commit().unwrap();
    assert_eq!(get(&db, &rel, b"k"), data);
}

// ------------------------------------------------------------- shrinking ---

#[test]
fn truncate_frees_extent_suffix_and_rehashes() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let data = pattern(200_000, 9);
    put(&db, &rel, b"k", &data);
    let frees_before = db.metrics().extent_frees.load(AtomicOrdering::Relaxed);

    for new_size in [150_000u64, 65_536, 4096, 100, 0] {
        let mut t = db.begin();
        t.truncate_blob(&rel, b"k", new_size).unwrap();
        t.commit().unwrap();
        let mut t = db.begin();
        let state = t.blob_state(&rel, b"k").unwrap().unwrap();
        assert_eq!(state.size, new_size);
        assert_eq!(state.sha256, Sha256::digest(&data[..new_size as usize]));
        let got = t.get_blob(&rel, b"k", |b| b.to_vec()).unwrap();
        assert_eq!(got, &data[..new_size as usize]);
        t.commit().unwrap();
    }
    assert!(
        db.metrics().extent_frees.load(AtomicOrdering::Relaxed) > frees_before,
        "shrinking must return extents to the free lists"
    );

    // Truncation to zero keeps the key alive and appendable.
    let extra = pattern(3000, 10);
    let mut t = db.begin();
    t.append_blob(&rel, b"k", &extra).unwrap();
    t.commit().unwrap();
    assert_eq!(get(&db, &rel, b"k"), extra);
}

#[test]
fn truncate_rejects_growth_and_roundtrips_noop() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let data = pattern(10_000, 2);
    put(&db, &rel, b"k", &data);
    let mut t = db.begin();
    assert!(t.truncate_blob(&rel, b"k", 10_001).is_err());
    t.truncate_blob(&rel, b"k", 10_000).unwrap(); // same size: no-op
    assert!(t.truncate_blob(&rel, b"missing", 0).is_err());
    t.commit().unwrap();
    assert_eq!(get(&db, &rel, b"k"), data);
}

#[test]
fn truncate_into_tail_extent_keeps_tail() {
    let mut cfg = small_cfg();
    cfg.use_tail_extents = true;
    let db = mem_db(cfg);
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    // 6 pages: tiers cover the head, a tail extent holds the rest.
    let data = pattern(6 * 4096, 4);
    put(&db, &rel, b"k", &data);

    let mut t = db.begin();
    let had_tail = t.blob_state(&rel, b"k").unwrap().unwrap().tail.is_some();
    t.commit().unwrap();

    // Shrink by half a page: the cut lands inside the tail extent.
    let new_size = (6 * 4096 - 2048) as u64;
    let mut t = db.begin();
    t.truncate_blob(&rel, b"k", new_size).unwrap();
    t.commit().unwrap();
    let mut t = db.begin();
    let state = t.blob_state(&rel, b"k").unwrap().unwrap();
    assert_eq!(
        state.tail.is_some(),
        had_tail,
        "tail still holds live bytes"
    );
    assert_eq!(state.sha256, Sha256::digest(&data[..new_size as usize]));
    t.commit().unwrap();

    // Shrink past the tail: it must be freed.
    let mut t = db.begin();
    t.truncate_blob(&rel, b"k", 4096).unwrap();
    t.commit().unwrap();
    let mut t = db.begin();
    let state = t.blob_state(&rel, b"k").unwrap().unwrap();
    assert!(state.tail.is_none());
    t.commit().unwrap();
    assert_eq!(get(&db, &rel, b"k"), &data[..4096]);
}

#[test]
fn truncate_survives_recovery() {
    let dev = Arc::new(MemDevice::new(128 << 20));
    let wal = Arc::new(MemDevice::new(32 << 20));
    let data = pattern(150_000, 21);
    {
        let db = Database::create(dev.clone(), wal.clone(), small_cfg()).unwrap();
        let rel = db.create_relation("b", RelationKind::Blob).unwrap();
        put(&db, &rel, b"k", &data);
        let mut t = db.begin();
        t.truncate_blob(&rel, b"k", 70_000).unwrap();
        t.commit().unwrap();
        db.wait_for_durability().unwrap();
        std::mem::forget(db); // crash
    }
    let (db, _) = Database::open(dev, wal, small_cfg()).unwrap();
    let rel = db.relation("b").unwrap();
    let mut t = db.begin();
    assert_eq!(
        t.get_blob(&rel, b"k", |b| b.to_vec()).unwrap(),
        &data[..70_000]
    );
    t.commit().unwrap();
}

// --------------------------------------------------------------- updates ---

#[test]
fn update_in_place_delta_and_clone() {
    for policy in [
        UpdatePolicy::AlwaysDelta,
        UpdatePolicy::AlwaysClone,
        UpdatePolicy::Auto,
    ] {
        let mut cfg = small_cfg();
        cfg.update_policy = policy;
        let db = mem_db(cfg);
        let rel = db.create_relation("b", RelationKind::Blob).unwrap();
        let mut data = pattern(100_000, 21);
        put(&db, &rel, b"k", &data);

        // Overwrite a range spanning extent boundaries.
        let patch = pattern(20_000, 22);
        let mut t = db.begin();
        t.update_blob(&rel, b"k", 3_000, &patch).unwrap();
        t.commit().unwrap();
        data[3_000..23_000].copy_from_slice(&patch);
        assert_eq!(get(&db, &rel, b"k"), data, "{policy:?}");

        let mut t = db.begin();
        let state = t.blob_state(&rel, b"k").unwrap().unwrap();
        t.commit().unwrap();
        assert_eq!(state.sha256, Sha256::digest(&data), "{policy:?}");
        // Prefix must reflect an update at offset 0 too.
        let mut t = db.begin();
        t.update_blob(&rel, b"k", 0, b"XYZ").unwrap();
        t.commit().unwrap();
        data[..3].copy_from_slice(b"XYZ");
        let mut t = db.begin();
        let state = t.blob_state(&rel, b"k").unwrap().unwrap();
        t.commit().unwrap();
        assert_eq!(&state.prefix[..3], b"XYZ");
    }
}

#[test]
fn update_beyond_size_is_rejected() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    put(&db, &rel, b"k", &pattern(1000, 1));
    let mut t = db.begin();
    assert!(matches!(
        t.update_blob(&rel, b"k", 900, &[0u8; 200]),
        Err(Error::InvalidArgument(_))
    ));
    drop(t);
}

// ------------------------------------------------------- delete & reuse ---

#[test]
fn delete_recycles_extents() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let data = pattern(500_000, 31);
    put(&db, &rel, b"a", &data);
    let used_after_one = db.allocator().pages_in_use();

    let mut t = db.begin();
    t.delete_blob(&rel, b"a").unwrap();
    t.commit().unwrap();

    // The same-size blob must reuse the freed extents exactly.
    put(&db, &rel, b"b", &data);
    assert_eq!(
        db.allocator().pages_in_use(),
        used_after_one,
        "free lists must recycle the deleted extents"
    );
    assert_eq!(get(&db, &rel, b"b"), data);
    let mut t = db.begin();
    assert!(t.blob_state(&rel, b"a").unwrap().is_none());
    t.commit().unwrap();
}

#[test]
fn churn_alloc_delete_stays_stable() {
    // Figure 11 in miniature: 80/20 alloc/delete churn at a fixed budget.
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let mut live: Vec<String> = Vec::new();
    let mut next = 0u64;
    for round in 0..300 {
        if round % 5 == 4 && !live.is_empty() {
            let key = live.swap_remove((round * 7) % live.len());
            let mut t = db.begin();
            t.delete_blob(&rel, key.as_bytes()).unwrap();
            t.commit().unwrap();
        } else {
            let key = format!("obj{next}");
            next += 1;
            let size = 1000 + (round * 37) % 60_000;
            put(&db, &rel, key.as_bytes(), &pattern(size, next));
            live.push(key);
        }
    }
    // All survivors readable.
    for key in live.iter().take(20) {
        let mut t = db.begin();
        assert!(t.blob_state(&rel, key.as_bytes()).unwrap().is_some());
        t.commit().unwrap();
    }
}

// ---------------------------------------------------- transactions / 2PL ---

#[test]
fn abort_rolls_back_everything() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    put(&db, &rel, b"keep", &pattern(50_000, 41));
    let pages_before = db.allocator().pages_in_use();

    let mut t = db.begin();
    t.put_blob(&rel, b"new", &pattern(100_000, 42)).unwrap();
    t.delete_blob(&rel, b"keep").unwrap();
    t.abort();

    assert_eq!(db.allocator().pages_in_use(), pages_before);
    let mut t = db.begin();
    assert!(t.blob_state(&rel, b"new").unwrap().is_none());
    assert!(t.blob_state(&rel, b"keep").unwrap().is_some());
    t.commit().unwrap();
    assert_eq!(get(&db, &rel, b"keep"), pattern(50_000, 41));
}

#[test]
fn drop_without_commit_is_abort() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    {
        let mut t = db.begin();
        t.put_blob(&rel, b"x", b"data").unwrap();
        // dropped here
    }
    let mut t = db.begin();
    assert!(t.blob_state(&rel, b"x").unwrap().is_none());
    t.commit().unwrap();
    assert_eq!(db.metrics().snapshot().txn_aborts, 1);
}

#[test]
fn wait_die_aborts_younger_writer() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    put(&db, &rel, b"k", b"v");

    let mut older = db.begin();
    let mut younger = db.begin();
    // Older takes the exclusive lock first.
    older.delete_blob(&rel, b"k").unwrap();
    // Younger must die.
    assert!(matches!(
        younger.get_blob(&rel, b"k", |_| ()),
        Err(Error::TxnConflict)
    ));
    drop(younger);
    older.abort(); // release
}

#[test]
fn concurrent_readers_share() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let data = pattern(200_000, 51);
    put(&db, &rel, b"k", &data);
    std::thread::scope(|s| {
        for w in 0..4 {
            let db = db.clone();
            let rel = rel.clone();
            let data = data.clone();
            s.spawn(move || {
                for _ in 0..20 {
                    let mut t = db.begin_with_worker(w);
                    t.get_blob(&rel, b"k", |b| assert_eq!(b, &data[..]))
                        .unwrap();
                    t.commit().unwrap();
                }
            });
        }
    });
}

#[test]
fn kv_relation_roundtrip() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("meta", RelationKind::Kv).unwrap();
    let mut t = db.begin();
    t.put_kv(&rel, b"a", b"1").unwrap();
    t.put_kv(&rel, b"b", b"2").unwrap();
    t.put_kv(&rel, b"a", b"1x").unwrap(); // overwrite
    t.commit().unwrap();

    let mut t = db.begin();
    assert_eq!(t.get_kv(&rel, b"a").unwrap(), Some(b"1x".to_vec()));
    assert!(t.delete_kv(&rel, b"b").unwrap());
    assert!(!t.delete_kv(&rel, b"b").unwrap());
    t.commit().unwrap();
}

// --------------------------------------------------- single-flush check ---

#[test]
fn blob_written_exactly_once() {
    // The headline property (§III-C): committing a BLOB writes its content
    // pages exactly once, and the WAL receives only the Blob State.
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let size = 1_000_000usize;
    let before = db.metrics().snapshot();
    put(&db, &rel, b"k", &pattern(size, 61));
    let delta = db.metrics().snapshot() - before;

    let content_pages = (size as u64).div_ceil(4096);
    assert!(
        delta.pages_written <= content_pages + 4,
        "content must be written once: {} pages written for {} content pages",
        delta.pages_written,
        content_pages
    );
    assert!(
        delta.wal_bytes < 4096,
        "WAL must carry only the Blob State, got {} bytes",
        delta.wal_bytes
    );
    assert_eq!(delta.fsyncs, 1, "one group-commit fsync");
}

#[test]
fn physlog_mode_writes_content_to_wal() {
    let mut cfg = small_cfg();
    cfg.blob_logging = BlobLogging::Physical { segment: 64 * 1024 };
    let db = mem_db(cfg);
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let size = 500_000usize;
    let data = pattern(size, 71);
    let before = db.metrics().snapshot();
    put(&db, &rel, b"k", &data);
    let delta = db.metrics().snapshot() - before;
    assert!(
        delta.wal_bytes >= size as u64,
        "physical logging must put content in the WAL ({} bytes)",
        delta.wal_bytes
    );
    assert_eq!(get(&db, &rel, b"k"), data);
}

// -------------------------------------------------------------- recovery ---

fn reopen(
    dev: Arc<MemDevice>,
    wal: Arc<MemDevice>,
    cfg: Config,
) -> (Arc<Database>, lobster_core::RecoveryReport) {
    Database::open(dev, wal, cfg).unwrap()
}

#[test]
fn clean_shutdown_reopen() {
    let dev = Arc::new(MemDevice::new(128 << 20));
    let wal = Arc::new(MemDevice::new(32 << 20));
    let data = pattern(300_000, 81);
    {
        let db = Database::create(dev.clone(), wal.clone(), small_cfg()).unwrap();
        let rel = db.create_relation("b", RelationKind::Blob).unwrap();
        put(&db, &rel, b"k", &data);
        db.shutdown().unwrap();
    }
    let (db, report) = reopen(dev, wal, small_cfg());
    assert_eq!(report.records, 0, "clean shutdown leaves an empty log");
    let rel = db.relation("b").unwrap();
    assert_eq!(get(&db, &rel, b"k"), data);
    // And the database stays writable with correct allocation state.
    put(&db, &rel, b"k2", &pattern(10_000, 82));
}

#[test]
fn recovery_replays_committed_transactions() {
    let dev = Arc::new(MemDevice::new(128 << 20));
    let wal = Arc::new(MemDevice::new(32 << 20));
    let data = pattern(100_000, 91);
    {
        let db = Database::create(dev.clone(), wal.clone(), small_cfg()).unwrap();
        let rel = db.create_relation("b", RelationKind::Blob).unwrap();
        put(&db, &rel, b"committed", &data);
        // Uncommitted work is lost.
        let mut t = db.begin();
        t.put_blob(&rel, b"uncommitted", &pattern(5000, 92))
            .unwrap();
        std::mem::forget(t); // simulate crash: no commit, no rollback
                             // No shutdown: the B-Tree state was never checkpointed.
    }
    let (db, report) = reopen(dev, wal, small_cfg());
    assert!(report.committed >= 2); // DDL txn + blob txn
    let rel = db.relation("b").unwrap();
    assert_eq!(get(&db, &rel, b"committed"), data);
    let mut t = db.begin();
    assert!(t.blob_state(&rel, b"uncommitted").unwrap().is_none());
    t.commit().unwrap();
}

#[test]
fn recovery_detects_lost_blob_content_via_sha() {
    // The crash window the paper's protocol defends: WAL fsync succeeded
    // (Blob State durable) but the extent flush never reached the device.
    let raw = MemDevice::new(128 << 20);
    let crash_dev = Arc::new(CrashDevice::new(raw));
    let wal = Arc::new(MemDevice::new(32 << 20));
    let data = pattern(200_000, 101);
    {
        let db = Database::create(crash_dev.clone(), wal.clone(), small_cfg()).unwrap();
        let rel = db.create_relation("b", RelationKind::Blob).unwrap();
        put(&db, &rel, b"good", &data);
        db.checkpoint().unwrap();

        // Cut power on the *data* device only: the WAL (separate device)
        // still records the commit, but extent content is dropped.
        crash_dev.crash_now();
        let mut t = db.begin();
        t.put_blob(&rel, b"lost", &pattern(100_000, 102)).unwrap();
        t.commit().unwrap();
        std::mem::forget(db);
    }
    // Reopen against what physically survived.
    let survived = Arc::new({
        // Copy surviving bytes into a fresh device.
        let src = crash_dev.inner();
        let dst = MemDevice::new(128 << 20);
        let mut buf = vec![0u8; 1 << 20];
        let mut off = 0u64;
        while off < src.capacity() {
            let n = buf.len().min((src.capacity() - off) as usize);
            src.read_at(&mut buf[..n], off).unwrap();
            dst.write_at(&buf[..n], off).unwrap();
            off += n as u64;
        }
        dst
    });
    let (db, report) = Database::open(survived, wal, small_cfg()).unwrap();
    assert_eq!(report.sha_failures, 1, "lost blob must fail validation");
    let rel = db.relation("b").unwrap();
    let mut t = db.begin();
    assert!(
        t.blob_state(&rel, b"lost").unwrap().is_none(),
        "failed transaction must be undone"
    );
    t.commit().unwrap();
    assert_eq!(get(&db, &rel, b"good"), data, "checkpointed blob survives");
}

#[test]
fn recovery_applies_deltas_and_appends() {
    let dev = Arc::new(MemDevice::new(128 << 20));
    let wal = Arc::new(MemDevice::new(32 << 20));
    let mut data = pattern(50_000, 111);
    {
        let mut cfg = small_cfg();
        cfg.update_policy = UpdatePolicy::AlwaysDelta;
        let db = Database::create(dev.clone(), wal.clone(), cfg).unwrap();
        let rel = db.create_relation("b", RelationKind::Blob).unwrap();
        put(&db, &rel, b"k", &data);
        db.checkpoint().unwrap();

        let mut t = db.begin();
        t.update_blob(&rel, b"k", 1000, &[0xEEu8; 3000]).unwrap();
        t.commit().unwrap();
        let extra = pattern(20_000, 112);
        let mut t = db.begin();
        t.append_blob(&rel, b"k", &extra).unwrap();
        t.commit().unwrap();
        data[1000..4000].fill(0xEE);
        data.extend_from_slice(&extra);
        std::mem::forget(db); // crash without checkpoint
    }
    let (db, _) = reopen(dev, wal, small_cfg());
    let rel = db.relation("b").unwrap();
    assert_eq!(get(&db, &rel, b"k"), data);
}

#[test]
fn recovery_physlog_restores_content_from_wal() {
    // In physical-logging mode the WAL itself carries content, so even a
    // total loss of extent writes is recoverable.
    let raw = MemDevice::new(128 << 20);
    let crash_dev = Arc::new(CrashDevice::new(raw));
    let wal = Arc::new(MemDevice::new(64 << 20));
    let data = pattern(150_000, 121);
    let mut cfg = small_cfg();
    cfg.blob_logging = BlobLogging::Physical { segment: 32 * 1024 };
    {
        let db = Database::create(crash_dev.clone(), wal.clone(), cfg.clone()).unwrap();
        let rel = db.create_relation("b", RelationKind::Blob).unwrap();
        db.checkpoint().unwrap();
        crash_dev.crash_now(); // all further data-device writes lost
        let mut t = db.begin();
        t.put_blob(&rel, b"k", &data).unwrap();
        t.commit().unwrap();
        std::mem::forget(db);
    }
    let survived = Arc::new({
        let src = crash_dev.inner();
        let dst = MemDevice::new(128 << 20);
        let mut buf = vec![0u8; 1 << 20];
        let mut off = 0u64;
        while off < src.capacity() {
            let n = buf.len().min((src.capacity() - off) as usize);
            src.read_at(&mut buf[..n], off).unwrap();
            dst.write_at(&buf[..n], off).unwrap();
            off += n as u64;
        }
        dst
    });
    let (db, _) = Database::open(survived, wal, cfg).unwrap();
    let rel = db.relation("b").unwrap();
    assert_eq!(get(&db, &rel, b"k"), data);
}

#[test]
fn checkpoint_truncates_log_and_database_remains_usable() {
    let mut cfg = small_cfg();
    // Asynchronous BLOB logging keeps the WAL tiny (Blob States only), so
    // force checkpoints with a very low threshold.
    cfg.checkpoint_threshold = 4 * 1024;
    let db = mem_db(cfg);
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    for i in 0..50 {
        put(&db, &rel, format!("k{i}").as_bytes(), &pattern(10_000, i));
    }
    let ckpts = db.metrics().snapshot().checkpoints;
    assert!(ckpts > 0, "threshold must have triggered checkpoints");
    for i in (0..50).step_by(7) {
        assert_eq!(
            get(&db, &rel, format!("k{i}").as_bytes()),
            pattern(10_000, i)
        );
    }
}

// ------------------------------------------------------- ht pool variant ---

#[test]
fn hash_table_pool_variant_works() {
    let mut cfg = small_cfg();
    cfg.pool_variant = PoolVariant::Ht;
    let db = mem_db(cfg);
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let data = pattern(300_000, 131);
    put(&db, &rel, b"k", &data);
    assert_eq!(get(&db, &rel, b"k"), data);
    // Reads through the hash-table pool must copy.
    let before = db.metrics().snapshot();
    let _ = get(&db, &rel, b"k");
    let delta = db.metrics().snapshot() - before;
    assert!(delta.memcpy_bytes >= data.len() as u64);
}

// --------------------------------------------------------------- indexes ---

#[test]
fn blob_state_index_orders_by_content() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    // Contents that share a long prefix (forcing incremental comparison).
    let mut contents: Vec<Vec<u8>> = Vec::new();
    for i in 0..20u8 {
        let mut c = vec![b'P'; 40_000];
        c.extend_from_slice(&[i; 1000]);
        contents.push(c);
    }
    let mut t = db.begin();
    for (i, c) in contents.iter().enumerate() {
        t.put_blob(&rel, format!("row{i}").as_bytes(), c).unwrap();
    }
    t.commit().unwrap();

    // Build the Blob State index: key = encoded state, value = row key.
    let cmp = BlobStateCmp::new(&db);
    let index = db
        .create_relation_with("b_content_idx", RelationKind::Kv, cmp, 1)
        .unwrap();
    let mut t = db.begin();
    for (i, _) in contents.iter().enumerate() {
        let key = format!("row{i}");
        let state = t.blob_state(&rel, key.as_bytes()).unwrap().unwrap();
        index
            .tree
            .insert(&state.encode(), key.as_bytes(), false)
            .unwrap();
    }
    t.commit().unwrap();

    // Point query through the index: probe with a state for known content.
    let mut t = db.begin();
    let probe = t.blob_state(&rel, b"row7").unwrap().unwrap();
    let row = index.tree.lookup(&probe.encode()).unwrap();
    t.commit().unwrap();
    assert_eq!(row, Some(b"row7".to_vec()));

    // Order must follow content order (contents sorted by their suffix).
    let mut rows = Vec::new();
    index
        .tree
        .for_each(|_, v| {
            rows.push(String::from_utf8(v.to_vec()).unwrap());
            true
        })
        .unwrap();
    let expect: Vec<String> = (0..20).map(|i| format!("row{i}")).collect();
    assert_eq!(rows, expect, "index order must equal content order");
}

#[test]
fn expression_index_semantic_queries() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("image", RelationKind::Blob).unwrap();
    // "classify" UDF: first byte decides the class.
    let classify: lobster_core::Udf = Arc::new(|content: &[u8]| {
        if content.first() == Some(&b'c') {
            b"cat".to_vec()
        } else {
            b"dog".to_vec()
        }
    });
    let index = ExpressionIndex::create(&db, &rel, "classify", classify).unwrap();

    let mut t = db.begin();
    for (key, content) in [
        (&b"img1"[..], &b"cat picture"[..]),
        (b"img2", b"dog picture"),
        (b"img3", b"cat again"),
    ] {
        t.put_blob(&rel, key, content).unwrap();
        index.insert(&mut t, &rel, key).unwrap();
    }
    t.commit().unwrap();

    let cats = index.scan_eq(b"cat").unwrap();
    assert_eq!(cats, vec![b"img1".to_vec(), b"img3".to_vec()]);
    let dogs = index.scan_eq(b"dog").unwrap();
    assert_eq!(dogs, vec![b"img2".to_vec()]);
    assert!(index.scan_eq(b"bird").unwrap().is_empty());
}

// ----------------------------------------------------------- metadata ops ---

#[test]
fn scan_states_visits_in_key_order() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    for i in 0..30 {
        put(&db, &rel, format!("f{i:03}").as_bytes(), &pattern(2000, i));
    }
    let mut t = db.begin();
    let mut seen = Vec::new();
    t.scan_states(&rel, b"f010", |k, state| {
        assert_eq!(state.size, 2000);
        seen.push(String::from_utf8(k.to_vec()).unwrap());
        seen.len() < 10
    })
    .unwrap();
    t.commit().unwrap();
    assert_eq!(seen.len(), 10);
    assert_eq!(seen[0], "f010");
    assert_eq!(seen[9], "f019");
    assert!(db.metrics().snapshot().metadata_ops >= 1);
}

// --------------------------------------------------------- misc plumbing ---

#[test]
fn utilization_reflects_stored_bytes() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let u0 = db.utilization();
    put(&db, &rel, b"k", &pattern(4 << 20, 141));
    assert!(db.utilization() > u0);
}

#[test]
fn power_of_two_tier_policy_end_to_end() {
    let mut cfg = small_cfg();
    cfg.tier_policy = TierPolicy::PowerOfTwo;
    let db = mem_db(cfg);
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let data = pattern(100_000, 151);
    put(&db, &rel, b"k", &data);
    assert_eq!(get(&db, &rel, b"k"), data);
}

#[test]
fn async_commit_mode_is_equivalent_after_drain() {
    let mut cfg = small_cfg();
    cfg.commit_wait = false;
    let dev = Arc::new(MemDevice::new(128 << 20));
    let wal = Arc::new(MemDevice::new(32 << 20));
    let data: Vec<Vec<u8>> = (0..20)
        .map(|i| pattern(20_000 + i * 777, i as u64))
        .collect();
    {
        let db = Database::create(dev.clone(), wal.clone(), cfg.clone()).unwrap();
        let rel = db.create_relation("b", RelationKind::Blob).unwrap();
        for (i, d) in data.iter().enumerate() {
            let mut t = db.begin();
            t.put_blob(&rel, format!("k{i}").as_bytes(), d).unwrap();
            t.commit().unwrap(); // returns before durability
        }
        // Deletes and re-inserts also ride the committer.
        let mut t = db.begin();
        t.delete_blob(&rel, b"k3").unwrap();
        t.commit().unwrap();
        // Reads see all async-committed writes immediately.
        let mut t = db.begin();
        assert_eq!(t.get_blob(&rel, b"k5", |b| b.to_vec()).unwrap(), data[5]);
        assert!(t.blob_state(&rel, b"k3").unwrap().is_none());
        t.commit().unwrap();
        db.wait_for_durability().unwrap();
        std::mem::forget(db); // crash after drain: everything must survive
    }
    let (db, _) = Database::open(dev, wal, cfg).unwrap();
    let rel = db.relation("b").unwrap();
    let mut t = db.begin();
    for (i, d) in data.iter().enumerate() {
        if i == 3 {
            assert!(t.blob_state(&rel, b"k3").unwrap().is_none());
        } else {
            assert_eq!(
                t.get_blob(&rel, format!("k{i}").as_bytes(), |b| b.to_vec())
                    .unwrap(),
                *d,
                "blob {i}"
            );
        }
    }
    t.commit().unwrap();
}

#[test]
fn metrics_track_txn_outcomes() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    put(&db, &rel, b"k", &pattern(1000, 1)); // big enough to need an extent
    let t: Txn = db.begin();
    t.abort();
    let s = db.metrics().snapshot();
    assert!(s.txn_commits >= 1);
    assert!(s.txn_aborts >= 1);
    assert!(db.metrics().extent_allocs.load(AtomicOrdering::Relaxed) >= 1);
}

// ------------------------------------------------------------------ DDL ---

#[test]
fn drop_relation_recycles_all_storage() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("victim", RelationKind::Blob).unwrap();
    let keep = db.create_relation("keep", RelationKind::Blob).unwrap();
    for i in 0..20 {
        put(&db, &rel, format!("k{i}").as_bytes(), &pattern(40_000, i));
        put(
            &db,
            &keep,
            format!("k{i}").as_bytes(),
            &pattern(10_000, 100 + i),
        );
    }
    let used_before = db.utilization();

    db.drop_relation("victim").unwrap();
    assert!(db.relation("victim").is_none());
    assert!(db.relation_names().iter().all(|n| n != "victim"));
    assert!(db.drop_relation("victim").is_err(), "double drop");
    assert!(
        db.utilization() < used_before,
        "dropping must return space: {} -> {}",
        used_before,
        db.utilization()
    );

    // The name is immediately reusable, and the freed extents are
    // recyclable without clashing with the survivor.
    let rel2 = db.create_relation("victim", RelationKind::Blob).unwrap();
    for i in 0..20 {
        put(
            &db,
            &rel2,
            format!("n{i}").as_bytes(),
            &pattern(40_000, 500 + i),
        );
    }
    for i in 0..20 {
        assert_eq!(
            get(&db, &keep, format!("k{i}").as_bytes()),
            pattern(10_000, 100 + i),
            "survivor blob {i} intact"
        );
        assert_eq!(
            get(&db, &rel2, format!("n{i}").as_bytes()),
            pattern(40_000, 500 + i)
        );
    }
}

#[test]
fn drop_relation_survives_recovery() {
    let dev = Arc::new(MemDevice::new(256 << 20));
    let wal = Arc::new(MemDevice::new(64 << 20));
    {
        let db = Database::create(dev.clone(), wal.clone(), small_cfg()).unwrap();
        let gone = db.create_relation("gone", RelationKind::Blob).unwrap();
        let keep = db.create_relation("keep", RelationKind::Kv).unwrap();
        put(&db, &gone, b"blob", &pattern(100_000, 3));
        let mut t = db.begin();
        t.put_kv(&keep, b"row", b"value").unwrap();
        t.commit().unwrap();
        db.drop_relation("gone").unwrap();
        db.wait_for_durability().unwrap();
        std::mem::forget(db); // crash after the drop committed
    }
    let (db, _) = Database::open(dev.clone(), wal.clone(), small_cfg()).unwrap();
    assert!(
        db.relation("gone").is_none(),
        "dropped relation must stay dropped"
    );
    let keep = db.relation("keep").unwrap();
    let mut t = db.begin();
    assert_eq!(t.get_kv(&keep, b"row").unwrap().unwrap(), b"value");
    t.commit().unwrap();

    // The reclaimed space is allocatable after recovery.
    let again = db.create_relation("gone", RelationKind::Blob).unwrap();
    put(&db, &again, b"fresh", &pattern(200_000, 9));
    assert_eq!(get(&db, &again, b"fresh"), pattern(200_000, 9));
}

#[test]
fn drop_kv_relation() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("rows", RelationKind::Kv).unwrap();
    let mut t = db.begin();
    for i in 0..100 {
        t.put_kv(&rel, format!("k{i}").as_bytes(), &[i as u8; 50])
            .unwrap();
    }
    t.commit().unwrap();
    db.drop_relation("rows").unwrap();
    assert!(db.relation("rows").is_none());
    assert!(db.drop_relation("never-existed").is_err());
}

// ---------------------------------------------------------------- scrub ---

#[test]
fn scrub_detects_silent_corruption() {
    let dev = Arc::new(MemDevice::new(256 << 20));
    let wal = Arc::new(MemDevice::new(64 << 20));
    let db = Database::create(dev.clone(), wal, small_cfg()).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    for i in 0..10u64 {
        put(
            &db,
            &rel,
            format!("k{i}").as_bytes(),
            &pattern(50_000 + i as usize, i),
        );
    }
    db.wait_for_durability().unwrap();

    let clean = db.scrub().unwrap();
    assert!(clean.is_clean());
    assert_eq!(clean.blobs, 10);
    assert!(clean.bytes >= 500_000);

    // Flip one byte of k3's content directly on the device (bit rot).
    let mut t = db.begin();
    let state = t.blob_state(&rel, b"k3").unwrap().unwrap();
    t.commit().unwrap();
    let victim_pid = state.extents[0];
    let off = db.geometry().offset_of(victim_pid) + 100;
    let mut b = [0u8; 1];
    dev.read_at(&mut b, off).unwrap();
    b[0] ^= 0x40;
    dev.write_at(&b, off).unwrap();
    // Drop caches so the scrub reads the rotten device bytes.
    db.blob_pool().drop_caches();

    let dirty = db.scrub().unwrap();
    assert_eq!(dirty.corrupt.len(), 1, "exactly the damaged blob");
    assert_eq!(dirty.corrupt[0].0, "b");
    assert_eq!(dirty.corrupt[0].1, b"k3");

    // Repair and re-verify.
    dev.read_at(&mut b, off).unwrap();
    b[0] ^= 0x40;
    dev.write_at(&b, off).unwrap();
    db.blob_pool().drop_caches();
    assert!(db.scrub().unwrap().is_clean());
}

#[test]
fn scrub_skips_kv_relations_and_counts_empty_blobs() {
    let db = mem_db(small_cfg());
    let blobs = db.create_relation("b", RelationKind::Blob).unwrap();
    let rows = db.create_relation("r", RelationKind::Kv).unwrap();
    put(&db, &blobs, b"empty", b"");
    let mut t = db.begin();
    t.put_kv(&rows, b"k", b"v").unwrap();
    t.commit().unwrap();

    let rep = db.scrub().unwrap();
    assert!(rep.is_clean());
    assert_eq!(rep.blobs, 1);
    assert_eq!(rep.bytes, 0);
}

#[test]
fn range_read_touches_only_covering_extents() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let data = pattern(8 << 20, 5); // 2048 pages across ~11 extents
    put(&db, &rel, b"big", &data);
    db.wait_for_durability().unwrap();
    db.blob_pool().drop_caches();

    // A 4 KiB pread deep inside the BLOB must not load the whole BLOB.
    let before = db.metrics().pages_read.load(AtomicOrdering::Relaxed);
    let mut t = db.begin();
    let mut buf = vec![0u8; 4096];
    let off = 5 << 20;
    let n = t.get_blob_range(&rel, b"big", off, &mut buf).unwrap();
    t.commit().unwrap();
    assert_eq!(n, 4096);
    assert_eq!(&buf, &data[off as usize..off as usize + 4096]);
    let loaded = db.metrics().pages_read.load(AtomicOrdering::Relaxed) - before;
    assert!(
        loaded < 1500,
        "4 KiB pread loaded {loaded} pages (whole blob would be ~2048)"
    );

    // Correctness across every extent boundary (tier sizes 1,2,4,8,...).
    let mut t = db.begin();
    let mut edge = 0u64;
    for pages in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
        edge += pages * 4096;
        if edge + 64 > data.len() as u64 {
            break;
        }
        let mut b = vec![0u8; 128];
        let start = edge - 64;
        let n = t.get_blob_range(&rel, b"big", start, &mut b).unwrap();
        assert_eq!(n, 128);
        assert_eq!(
            &b,
            &data[start as usize..start as usize + 128],
            "boundary at {edge}"
        );
    }
    t.commit().unwrap();
}

#[test]
fn append_reads_only_the_final_partial_block() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    // 4 MiB + 17 bytes: append must reread only the 17-byte tail block.
    let mut data = pattern((4 << 20) + 17, 6);
    put(&db, &rel, b"k", &data);
    db.wait_for_durability().unwrap();
    db.blob_pool().drop_caches();

    let before = db.metrics().pages_read.load(AtomicOrdering::Relaxed);
    let extra = pattern(100, 7);
    let mut t = db.begin();
    t.append_blob(&rel, b"k", &extra).unwrap();
    t.commit().unwrap();
    data.extend_from_slice(&extra);
    let loaded = db.metrics().pages_read.load(AtomicOrdering::Relaxed) - before;
    assert!(
        loaded <= 8,
        "append reloaded {loaded} pages; only the final partial block and the \
         partially filled growth pages should load"
    );
    assert_eq!(get(&db, &rel, b"k"), data);
    let mut t = db.begin();
    let state = t.blob_state(&rel, b"k").unwrap().unwrap();
    t.commit().unwrap();
    assert_eq!(state.sha256, Sha256::digest(&data));
}

// ----------------------------------------------------- auto checkpointing ---

#[test]
fn wal_growth_triggers_automatic_checkpoint() {
    let mut cfg = small_cfg();
    cfg.checkpoint_threshold = 16 << 10; // 16 KiB: a few dozen commits
    let db = mem_db(cfg);
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();

    let ckpts_before = db.metrics().checkpoints.load(AtomicOrdering::Relaxed);
    // Each commit logs a few hundred bytes; hundreds of commits must cross
    // the threshold repeatedly.
    for i in 0..400u64 {
        let mut t = db.begin();
        t.put_blob(&rel, &i.to_be_bytes(), &pattern(2000, i))
            .unwrap();
        t.commit().unwrap();
    }
    db.wait_for_durability().unwrap();
    let ckpts = db.metrics().checkpoints.load(AtomicOrdering::Relaxed) - ckpts_before;
    assert!(
        ckpts >= 2,
        "expected repeated auto-checkpoints, got {ckpts}"
    );
    assert!(
        db.wal().active_bytes() < (16 << 10) * 2,
        "the log must stay near the threshold, not grow without bound"
    );

    // Everything survives a crash right after heavy checkpointing.
    let dev = db.device();
    let wal_rec: Vec<_> = db.wal().read_all().unwrap();
    let _ = wal_rec;
    db.wait_for_durability().unwrap();
    std::mem::forget(db);
    // NOTE: mem_db's WAL device is not retrievable here; correctness of
    // checkpoint+recovery interplay is covered by crash_sweep/crash_fuzz.
    drop(dev);
}

#[test]
fn header_reads_are_served_from_the_blob_state() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let data = pattern(2 << 20, 13);
    put(&db, &rel, b"file.png", &data);
    db.wait_for_durability().unwrap();
    db.blob_pool().drop_caches();

    // MIME sniffing: the first bytes come from the Blob State; no content
    // page is touched even on a fully cold cache.
    let before = db.metrics().pages_read.load(AtomicOrdering::Relaxed);
    let mut t = db.begin();
    let mut magic = [0u8; 16];
    assert_eq!(
        t.get_blob_range(&rel, b"file.png", 0, &mut magic).unwrap(),
        16
    );
    let mut mid = [0u8; 8];
    assert_eq!(
        t.get_blob_range(&rel, b"file.png", 24, &mut mid).unwrap(),
        8
    );
    t.commit().unwrap();
    assert_eq!(&magic, &data[..16]);
    assert_eq!(&mid, &data[24..32]);
    assert_eq!(
        db.metrics().pages_read.load(AtomicOrdering::Relaxed),
        before,
        "prefix reads must cost zero content I/O"
    );

    // A read straddling the 32-byte boundary falls through to content.
    let mut t = db.begin();
    let mut buf = [0u8; 40];
    assert_eq!(
        t.get_blob_range(&rel, b"file.png", 10, &mut buf).unwrap(),
        40
    );
    t.commit().unwrap();
    assert_eq!(&buf, &data[10..50]);

    // The prefix stays correct through overwrites of the header.
    let mut t = db.begin();
    t.update_blob(&rel, b"file.png", 0, b"NEWMAGIC").unwrap();
    t.commit().unwrap();
    let mut t = db.begin();
    let mut magic = [0u8; 8];
    t.get_blob_range(&rel, b"file.png", 0, &mut magic).unwrap();
    t.commit().unwrap();
    assert_eq!(&magic, b"NEWMAGIC");
}

// ---------------------------------------------------------- space hygiene ---

#[test]
fn churn_does_not_leak_space() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();

    // Baseline after one full put+delete round.
    for i in 0..30u64 {
        put(&db, &rel, &i.to_be_bytes(), &pattern(64_000, i));
    }
    for i in 0..30u64 {
        let mut t = db.begin();
        t.delete_blob(&rel, &i.to_be_bytes()).unwrap();
        t.commit().unwrap();
    }
    db.wait_for_durability().unwrap();
    let baseline = db.utilization();

    // 10 more rounds of identical churn must not grow the footprint: the
    // exact-size free lists recycle every extent.
    for round in 0..10u64 {
        for i in 0..30u64 {
            put(
                &db,
                &rel,
                &i.to_be_bytes(),
                &pattern(64_000, round * 100 + i),
            );
        }
        for i in 0..30u64 {
            let mut t = db.begin();
            t.delete_blob(&rel, &i.to_be_bytes()).unwrap();
            t.commit().unwrap();
        }
    }
    db.wait_for_durability().unwrap();
    assert!(
        db.utilization() <= baseline * 1.05 + 0.01,
        "space leaked: {} -> {}",
        baseline,
        db.utilization()
    );
}

#[test]
fn repeated_reopen_cycles_are_stable() {
    let dev = Arc::new(MemDevice::new(256 << 20));
    let wal = Arc::new(MemDevice::new(32 << 20));
    {
        let db = Database::create(dev.clone(), wal.clone(), small_cfg()).unwrap();
        db.create_relation("b", RelationKind::Blob).unwrap();
        db.shutdown().unwrap();
    }
    let mut last_util = None;
    for cycle in 0..12u64 {
        let (db, _) = Database::open(dev.clone(), wal.clone(), small_cfg()).unwrap();
        let rel = db.relation("b").unwrap();
        // Replace one blob per cycle; read the survivor of the last cycle.
        if cycle > 0 {
            let mut t = db.begin();
            let got = t.get_blob(&rel, b"survivor", |b| b.to_vec()).unwrap();
            assert_eq!(got, pattern(90_000, cycle - 1), "cycle {cycle}");
            t.delete_blob(&rel, b"survivor").unwrap();
            t.commit().unwrap();
        }
        put(&db, &rel, b"survivor", &pattern(90_000, cycle));
        // Alternate clean and dirty shutdowns.
        if cycle % 2 == 0 {
            db.shutdown().unwrap();
        } else {
            db.wait_for_durability().unwrap();
            std::mem::forget(db.clone());
        }
        let util = db.utilization();
        if let Some(prev) = last_util {
            assert!(
                util <= prev + 0.02,
                "cycle {cycle}: utilization creeping {prev} -> {util}"
            );
        }
        last_util = Some(util);
        drop(db);
    }
}

// ----------------------------------------------------------- inline blobs ---

#[test]
fn tiny_blobs_are_fully_inline() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let allocs_before = db.metrics().extent_allocs.load(AtomicOrdering::Relaxed);

    for (i, size) in [0usize, 1, 16, 31, 32].iter().enumerate() {
        let key = format!("t{i}");
        let data = pattern(*size, i as u64);
        put(&db, &rel, key.as_bytes(), &data);
        assert_eq!(get(&db, &rel, key.as_bytes()), data, "size {size}");
        let mut t = db.begin();
        let state = t.blob_state(&rel, key.as_bytes()).unwrap().unwrap();
        t.commit().unwrap();
        assert!(state.extents.is_empty(), "size {size} must be inline");
        assert!(state.tail.is_none());
        assert_eq!(state.sha256, Sha256::digest(&data));
    }
    assert_eq!(
        db.metrics().extent_allocs.load(AtomicOrdering::Relaxed),
        allocs_before,
        "inline blobs must not allocate extents"
    );

    // 33 bytes crosses the bound and gets an extent.
    put(&db, &rel, b"big", &pattern(33, 99));
    let mut t = db.begin();
    let state = t.blob_state(&rel, b"big").unwrap().unwrap();
    t.commit().unwrap();
    assert_eq!(state.extents.len(), 1);
}

#[test]
fn inline_blob_lifecycle_appends_updates_truncates() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let mut oracle = pattern(10, 1);
    put(&db, &rel, b"k", &oracle);

    // Inline-to-inline append.
    let mut t = db.begin();
    t.append_blob(&rel, b"k", &pattern(12, 2)).unwrap();
    t.commit().unwrap();
    oracle.extend_from_slice(&pattern(12, 2));
    assert_eq!(get(&db, &rel, b"k"), oracle);

    // Inline update in place.
    let mut t = db.begin();
    t.update_blob(&rel, b"k", 4, b"XYZ").unwrap();
    t.commit().unwrap();
    oracle[4..7].copy_from_slice(b"XYZ");
    assert_eq!(get(&db, &rel, b"k"), oracle);

    // Append crossing the inline bound materializes extents.
    let extra = pattern(100_000, 3);
    let mut t = db.begin();
    t.append_blob(&rel, b"k", &extra).unwrap();
    t.commit().unwrap();
    oracle.extend_from_slice(&extra);
    assert_eq!(get(&db, &rel, b"k"), oracle);
    let mut t = db.begin();
    let state = t.blob_state(&rel, b"k").unwrap().unwrap();
    assert!(!state.extents.is_empty());
    assert_eq!(state.sha256, Sha256::digest(&oracle));
    t.commit().unwrap();

    // Truncating back below the bound keeps content correct (the kept
    // tier prefix remains; that is an implementation detail).
    let mut t = db.begin();
    t.truncate_blob(&rel, b"k", 20).unwrap();
    t.commit().unwrap();
    oracle.truncate(20);
    assert_eq!(get(&db, &rel, b"k"), oracle);
}

#[test]
fn inline_blobs_survive_recovery_and_scrub() {
    let dev = Arc::new(MemDevice::new(128 << 20));
    let wal = Arc::new(MemDevice::new(32 << 20));
    {
        let db = Database::create(dev.clone(), wal.clone(), small_cfg()).unwrap();
        let rel = db.create_relation("b", RelationKind::Blob).unwrap();
        put(&db, &rel, b"tiny", b"hello inline world");
        put(&db, &rel, b"big", &pattern(50_000, 7));
        db.wait_for_durability().unwrap();
        std::mem::forget(db); // crash: tiny must ride the WAL alone
    }
    let (db, report) = Database::open(dev, wal, small_cfg()).unwrap();
    assert_eq!(report.sha_failures, 0);
    let rel = db.relation("b").unwrap();
    assert_eq!(get(&db, &rel, b"tiny"), b"hello inline world");
    assert!(db.scrub().unwrap().is_clean());
}
